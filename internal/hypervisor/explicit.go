package hypervisor

import (
	"fmt"

	"repro/internal/swapdev"
)

// ExplicitSD models the second remote-memory function of Section 4: a swap
// device, visible to the VM, backed by remote RAM (or by a local SSD/HDD in
// the Table 2 comparison). Unlike RAM Ext, the guest operating system knows
// it has less RAM, which makes its memory management more aggressive: the
// paper measured, for instance, more than 122% additional swap traffic for
// Elasticsearch compared to the hypervisor-managed RAM Ext.
//
// The model keeps the guest's resident set in "guest RAM" (LocalFrames pages)
// and swaps overflow pages to the configured swap device, charging the device
// latency for every swap-in and swap-out. The AggressivenessFactor multiplies
// the swap traffic to capture the guest-visible behaviour difference; it
// defaults to the paper's observation and is exposed as a calibration knob.
type ExplicitSD struct {
	pages       int
	localFrames int
	device      swapdev.Device
	cost        CostModel

	// aggressiveness multiplies the swap traffic relative to what a
	// hypervisor-managed policy would generate (>= 1).
	aggressiveness float64
	// extraTraffic accumulates the fractional additional transfers implied by
	// the aggressiveness factor.
	extraTraffic float64

	resident  map[int]bool
	fifo      []int
	slotOf    map[int]int
	freeSlots []int

	stats Stats
}

// DefaultAggressiveness reflects the paper's observation that guest-managed
// swapping generates roughly twice the traffic of hypervisor paging, because
// applications and the guest kernel size their caches to the RAM they see at
// start time.
const DefaultAggressiveness = 2.2

// ExplicitConfig configures an ExplicitSD context.
type ExplicitConfig struct {
	// Pages is the VM's working memory in pages.
	Pages int
	// LocalFrames is the guest-visible RAM in pages.
	LocalFrames int
	// Device is the swap device (remote RAM, SSD or HDD).
	Device swapdev.Device
	// Cost is the CPU cost model; DefaultCostModel when zero.
	Cost CostModel
	// Aggressiveness scales swap traffic; DefaultAggressiveness when zero.
	Aggressiveness float64
}

// NewExplicitSD validates the configuration and builds the context.
func NewExplicitSD(cfg ExplicitConfig) (*ExplicitSD, error) {
	if cfg.Pages <= 0 {
		return nil, fmt.Errorf("hypervisor: explicit SD needs at least one page")
	}
	if cfg.LocalFrames < 0 {
		return nil, fmt.Errorf("hypervisor: negative guest RAM")
	}
	if cfg.LocalFrames > cfg.Pages {
		cfg.LocalFrames = cfg.Pages
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.Aggressiveness <= 0 {
		cfg.Aggressiveness = DefaultAggressiveness
	}
	needSwap := cfg.Pages - cfg.LocalFrames
	if needSwap > 0 {
		if cfg.Device == nil {
			return nil, fmt.Errorf("hypervisor: a swap device is required when %d pages overflow guest RAM", needSwap)
		}
		if cfg.Device.Slots() < needSwap {
			return nil, fmt.Errorf("hypervisor: swap device has %d slots, need %d", cfg.Device.Slots(), needSwap)
		}
	}
	e := &ExplicitSD{
		pages:          cfg.Pages,
		localFrames:    cfg.LocalFrames,
		device:         cfg.Device,
		cost:           cfg.Cost,
		aggressiveness: cfg.Aggressiveness,
		resident:       make(map[int]bool, cfg.LocalFrames),
		slotOf:         make(map[int]int),
	}
	if cfg.Device != nil {
		e.freeSlots = make([]int, 0, cfg.Device.Slots())
		for i := cfg.Device.Slots() - 1; i >= 0; i-- {
			e.freeSlots = append(e.freeSlots, i)
		}
	}
	return e, nil
}

// Stats returns a snapshot of the swap statistics.
func (e *ExplicitSD) Stats() Stats { return e.stats }

// Aggressiveness returns the configured traffic multiplier.
func (e *ExplicitSD) Aggressiveness() float64 { return e.aggressiveness }

// Access simulates one guest access to the page, swapping through the device
// when the page is not resident in guest RAM. It returns the simulated
// latency in nanoseconds.
func (e *ExplicitSD) Access(page int, write bool) (float64, error) {
	if page < 0 || page >= e.pages {
		return 0, ErrBadPage
	}
	e.stats.Accesses++
	ns := e.cost.LocalAccessNs
	e.stats.LocalNs += e.cost.LocalAccessNs
	if e.resident[page] {
		return ns, nil
	}

	// Page fault inside the guest.
	ns += e.cost.FaultTrapNs
	e.stats.FaultNs += e.cost.FaultTrapNs

	// Make room if guest RAM is full: swap out the oldest resident page. The
	// aggressiveness factor models the extra traffic a guest-managed policy
	// produces (read-ahead, dirty writeback of clean-ish pages, cache sizing):
	// every real swap-out accumulates fractional extra page transfers, which
	// are accounted as additional demotions and device time.
	if len(e.resident) >= e.localFrames {
		victim := e.fifo[0]
		e.fifo = e.fifo[1:]
		delete(e.resident, victim)
		outLat, err := e.swapOut(victim)
		if err != nil {
			return ns, err
		}
		e.stats.Demotions++
		e.stats.RemoteNs += outLat
		ns += outLat
		e.extraTraffic += e.aggressiveness - 1
		for e.extraTraffic >= 1 {
			e.extraTraffic--
			e.stats.Demotions++
			e.stats.RemoteNs += outLat
			ns += outLat
		}
		e.stats.MajorFaults++
	} else {
		e.stats.MinorFaults++
	}

	// Swap the requested page in if it had been swapped out before.
	if slot, ok := e.slotOf[page]; ok {
		inLat, err := e.swapIn(page, slot)
		if err != nil {
			return ns, err
		}
		e.stats.Promotions++
		e.stats.RemoteNs += inLat
		ns += inLat
	}

	e.resident[page] = true
	e.fifo = append(e.fifo, page)
	return ns, nil
}

func (e *ExplicitSD) swapOut(page int) (float64, error) {
	if len(e.freeSlots) == 0 {
		// Reuse the page's previous slot if it has one; otherwise fail.
		if _, ok := e.slotOf[page]; !ok {
			return 0, ErrNoRemoteCapacity
		}
	}
	slot, ok := e.slotOf[page]
	if !ok {
		slot = e.freeSlots[len(e.freeSlots)-1]
		e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
		e.slotOf[page] = slot
	}
	lat, err := e.device.SwapOut(slot, []byte{byte(page)})
	return float64(lat), err
}

func (e *ExplicitSD) swapIn(page, slot int) (float64, error) {
	dst := make([]byte, 1)
	lat, err := e.device.SwapIn(slot, dst)
	if err != nil {
		return 0, err
	}
	return float64(lat), nil
}

// SwapTraffic returns the total pages moved to/from the swap device; the
// paper compares this between RAM Ext and Explicit SD ("v2 generates more
// than 122% traffic than v1").
func (e *ExplicitSD) SwapTraffic() uint64 { return e.stats.Demotions + e.stats.Promotions }
