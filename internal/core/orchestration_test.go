package core

import (
	"testing"

	"repro/internal/acpi"
	"repro/internal/memctl"
	"repro/internal/vm"
	"repro/internal/workload"
)

func TestMigrateVMZombieStackProtocol(t *testing.T) {
	r := testRack(t, 3)
	if err := r.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	// A VM that needs remote memory (1.5 GiB on 896 MiB-free hosts).
	spec := vm.New("mig", 3<<29, 1<<30)
	guest, err := r.CreateVM(spec, CreateVMOptions{SimPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if guest.RemoteBytes == 0 {
		t.Fatal("the test VM should have remote memory")
	}
	srcHost := guest.Host
	dest := "server-01"
	if srcHost == dest {
		dest = "server-00"
	}
	buffersBefore := len(r.Controller().BuffersServedBy(memctl.ServerID("server-02")))

	res, err := r.MigrateVM("mig", dest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "zombiestack" {
		t.Errorf("protocol = %q", res.Protocol)
	}
	// Only the hot local part is copied: strictly less than the reservation.
	if res.BytesTransferred >= spec.ReservedBytes {
		t.Errorf("migration copied %d bytes, should copy only the local hot part", res.BytesTransferred)
	}
	if res.RemoteOwnershipUpdates == 0 {
		t.Error("remote buffers should be re-pointed")
	}
	// The VM now lives on the destination; its remote buffers did not move.
	moved, err := r.VM("mig")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Host != dest {
		t.Errorf("VM host = %s, want %s", moved.Host, dest)
	}
	if got := len(r.Controller().BuffersOf(memctl.ServerID(dest))); got == 0 {
		t.Error("the destination should own the VM's remote buffers after migration")
	}
	if got := len(r.Controller().BuffersOf(memctl.ServerID(srcHost))); got != 0 {
		t.Errorf("the source still owns %d buffers", got)
	}
	if got := len(r.Controller().BuffersServedBy(memctl.ServerID("server-02"))); got != buffersBefore {
		t.Errorf("the zombie's served buffers changed across migration (%d -> %d): data must not move", buffersBefore, got)
	}
	// The migration advanced the simulated clock by its duration.
	if r.Now() == 0 {
		t.Error("migration should consume simulated time")
	}
	// Workloads keep running on the destination.
	if _, err := r.RunWorkload("mig", workload.SparkSQL, 1, 5); err != nil {
		t.Fatalf("workload after migration: %v", err)
	}
}

func TestMigrateVMValidation(t *testing.T) {
	r := testRack(t, 2)
	if _, err := r.MigrateVM("ghost", "server-01"); err == nil {
		t.Error("unknown VM should fail")
	}
	spec := vm.New("v", 256<<20, 128<<20)
	g, err := r.CreateVM(spec, CreateVMOptions{SimPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.MigrateVM("v", "nope"); err == nil {
		t.Error("unknown destination should fail")
	}
	if _, err := r.MigrateVM("v", g.Host); err == nil {
		t.Error("migrating to the current host should fail")
	}
	// A suspended destination is rejected.
	other := "server-00"
	if g.Host == "server-00" {
		other = "server-01"
	}
	if err := r.Suspend(other, acpi.S3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MigrateVM("v", other); err == nil {
		t.Error("suspended destination should fail")
	}
}

func TestMigrateVMCapacityCheck(t *testing.T) {
	r := testRack(t, 2)
	// Fill the destination with a large VM, then try to migrate another
	// large VM onto it.
	a, err := r.CreateVM(vm.New("a", 512<<20, 256<<20), CreateVMOptions{SimPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	bHost := "server-00"
	if a.Host == "server-00" {
		bHost = "server-01"
	}
	_ = bHost
	b, err := r.CreateVM(vm.New("b", 512<<20, 256<<20), CreateVMOptions{SimPages: 128, Strategy: 1 /* spreading */})
	if err != nil {
		t.Fatal(err)
	}
	if a.Host == b.Host {
		t.Skip("placement stacked both VMs; capacity check not exercisable")
	}
	// b's host has 896 MiB usable and already hosts b's 512 MiB; migrating
	// a's 512 MiB of local memory there must fail the capacity check.
	if _, err := r.MigrateVM("a", b.Host); err == nil {
		t.Fatal("migration beyond the destination's local memory should fail")
	}
}

func TestConsolidateOncePushesIdleHostsToZombie(t *testing.T) {
	r := testRack(t, 4)
	// One small VM on a stacked host; the remaining hosts are idle.
	if _, err := r.CreateVM(vm.New("only", 256<<20, 128<<20), CreateVMOptions{SimPages: 128}); err != nil {
		t.Fatal(err)
	}
	report, err := r.ConsolidateOnce()
	if err != nil {
		t.Fatal(err)
	}
	// Completely idle hosts have no VMs to migrate, so they are classified
	// underloaded and suspended into Sz.
	if len(report.PushedToZombie) == 0 {
		t.Fatalf("consolidation should park idle hosts in Sz, report=%+v", report)
	}
	for _, name := range report.PushedToZombie {
		s, _ := r.Server(name)
		if s.State() != acpi.Sz {
			t.Errorf("%s state = %v, want Sz", name, s.State())
		}
	}
	// The rack now has remote memory available from the zombies.
	if r.FreeRemoteMemory() == 0 {
		t.Error("zombie hosts should have delegated their memory")
	}
	// A second pass is idempotent enough not to error.
	if _, err := r.ConsolidateOnce(); err != nil {
		t.Fatal(err)
	}
}

func TestConsolidateOnceMigratesFromUnderloadedHost(t *testing.T) {
	r := testRack(t, 3)
	// Two VMs on two different hosts (spreading), each lightly loaded: the
	// consolidation pass should co-locate them and free a host.
	a, err := r.CreateVM(vm.New("a", 256<<20, 64<<20), CreateVMOptions{SimPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.CreateVM(vm.New("b", 256<<20, 64<<20), CreateVMOptions{SimPages: 128, Strategy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Host == b.Host {
		t.Skip("spreading placed both VMs together; nothing to consolidate")
	}
	report, err := r.ConsolidateOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Underloaded) == 0 {
		t.Error("both hosts are underloaded")
	}
	if len(report.Migrated)+len(report.PushedToZombie) == 0 {
		t.Errorf("consolidation should have acted, report=%+v", report)
	}
}

func TestFailoverController(t *testing.T) {
	r := testRack(t, 3)
	if err := r.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	// While the rack heartbeats, fail-over is refused.
	r.AdvanceClock(1e9)
	if _, err := r.FailoverController(r.Now()); err == nil {
		t.Fatal("fail-over should be refused while the primary heartbeats")
	}
	// Silence the primary for longer than the heartbeat timeout: the
	// secondary promotes itself and rebuilds the state.
	rebuilt, err := r.FailoverController(r.Now() + 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Secondary().Promoted() {
		t.Error("secondary should be promoted")
	}
	if rebuilt != r.Controller() {
		t.Error("the rack should now use the rebuilt controller")
	}
	if len(rebuilt.Servers()) != 3 {
		t.Errorf("rebuilt controller knows %d servers, want 3", len(rebuilt.Servers()))
	}
	if role, _ := rebuilt.Role(memctl.ServerID("server-02")); role != memctl.RoleZombie {
		t.Errorf("rebuilt role of server-02 = %v, want zombie", role)
	}
	if rebuilt.FreeMemory() == 0 {
		t.Error("the rebuilt controller should know about the zombie's lent memory")
	}
}
