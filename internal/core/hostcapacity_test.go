package core

import (
	"testing"

	"repro/internal/acpi"
)

// TestHostCapacitiesCustomBufferSize pins the lent-memory accounting to the
// rack's configured buffer size: a server that delegates part of its memory
// while active must be charged exactly served-buffers × BufferSize, not ×
// the 64 MiB memctl default. (With the default applied to a 16 MiB rack the
// charge was 4× too high, driving TotalMemory negative and filtering healthy
// hosts out of placement.)
func TestHostCapacitiesCustomBufferSize(t *testing.T) {
	const bufSize = 16 << 20
	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = 1 << 30
	r, err := NewRack(Config{
		Servers:           1,
		Board:             board,
		BufferSize:        bufSize,
		HostReservedBytes: 128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	name := r.Servers()[0]
	base := r.HostCapacities()[0].TotalMemory

	s, err := r.Server(name)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Agent.DelegateWhileActive(512 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("the server should have memory to lend")
	}

	got := r.HostCapacities()[0].TotalMemory
	want := base - int64(n)*bufSize
	if got != want {
		t.Fatalf("TotalMemory after lending %d buffers = %d, want %d (base %d)", n, got, want, base)
	}
	if got < 0 {
		t.Fatalf("TotalMemory went negative: %d", got)
	}
}
