package core

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/ident"
	"repro/internal/memctl"
	"repro/internal/memplane"
	"repro/internal/vm"
)

// MemplaneOf returns (building on first use) the VM's remote-memory data
// plane: an address space scaled like the VM's paging context whose pages
// live in the host's local arena up to the placement's local fraction and
// overflow into the VM's own RAM-ext reservation — the plane is seeded with
// the buffers CreateVM already granted, so data-plane bytes land in exactly
// the remote memory the placement reserved (no double booking against the
// rack's admission control). It grows through the host agent's guaranteed
// GS_alloc_ext path only past that reservation. Once the plane exists it
// owns the reservation's handles: its Close (run by DestroyVM) releases
// them. Like real remote memory, the reservation aliases the paging
// context's backing store — drive a VM through paging replay or the data
// plane, not both.
func (r *Rack) MemplaneOf(vmID string) (*memplane.Plane, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	guest, ok := r.vmLocked(vmID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVM, vmID)
	}
	if guest.plane != nil {
		return guest.plane, nil
	}
	host, _ := r.server(guest.Host)
	pageSize := int64(vm.DefaultPageSize)
	p, err := memplane.New(memplane.Config{
		VM:           vmID,
		LocalBytes:   int64(guest.Paging.LocalFrames()) * pageSize,
		AddressBytes: int64(guest.Paging.Pages()) * pageSize,
		PageSize:     pageSize,
		Agent:        host.Agent,
		Buffers:      guest.buffers,
		Cost:         r.cfg.CostModel,
		Chaos:        r.dataChaos,
		Now:          r.dataNow,
	})
	if err != nil {
		return nil, err
	}
	guest.plane = p
	return p, nil
}

// SetDataChaos arms the data planes built after this call with a chaos plan:
// remote charges degrade during FabricDegrade windows, looked up at now().
// Planes already built keep their configuration.
func (r *Rack) SetDataChaos(plan *chaos.Plan, now func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dataChaos = plan
	r.dataNow = now
}

// dataPlanes snapshots the live planes, in VM-name order.
func (r *Rack) dataPlanes() []*memplane.Plane {
	r.mu.Lock()
	defer r.mu.Unlock()
	type named struct {
		name  string
		plane *memplane.Plane
	}
	live := make([]named, 0, r.vmCount)
	for vid, g := range r.vms {
		if g != nil && g.plane != nil {
			live = append(live, named{r.names.Name(ident.ID(vid)), g.plane})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].name < live[j].name })
	out := make([]*memplane.Plane, len(live))
	for i, n := range live {
		out[i] = n.plane
	}
	return out
}

// CrashDataHost marks a server crashed on every live data plane: remote
// operations against its frames time out until ReviveDataHost or a re-home.
// It does not touch the control plane or the device posture — the fleet's
// crash bookkeeping handles those.
func (r *Rack) CrashDataHost(server string) {
	for _, p := range r.dataPlanes() {
		p.CrashHost(memctl.ServerID(server))
	}
}

// ReviveDataHost clears a crash mark on every live data plane.
func (r *Rack) ReviveDataHost(server string) {
	for _, p := range r.dataPlanes() {
		p.ReviveHost(memctl.ServerID(server))
	}
}

// RehomeDataHost migrates every live page served by the (crashed) server onto
// healthy hosts, plane by plane in VM order, and returns the aggregate
// migration report.
func (r *Rack) RehomeDataHost(server string) (memplane.RehomeReport, error) {
	var total memplane.RehomeReport
	for _, p := range r.dataPlanes() {
		rep, err := p.Rehome(memctl.ServerID(server))
		total.Pages += rep.Pages
		total.Bytes += rep.Bytes
		total.Ns += rep.Ns
		if err != nil {
			return total, fmt.Errorf("core: re-homing %s off %s: %w", p.VM(), server, err)
		}
	}
	return total, nil
}
