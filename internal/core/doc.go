// Package core assembles the paper's full rack architecture (Figure 7): a set
// of general-purpose servers connected by an RDMA fabric, a global memory
// controller mirrored by a secondary controller, per-server remote memory
// manager agents, ACPI platforms with the Sz zombie state, per-server energy
// accounting, and the ZombieStack placement and paging machinery on top.
//
// The Rack type is the library's integration point: the public root package
// re-exports it, the examples drive it, and the rack-level experiments
// (Figure 8, Tables 1-2, Figure 9) run on top of it.
package core
