package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/acpi"
	"repro/internal/chaos"
	"repro/internal/energy"
	"repro/internal/hypervisor"
	"repro/internal/ident"
	"repro/internal/memctl"
	"repro/internal/memplane"
	"repro/internal/pagepolicy"
	"repro/internal/placement"
	"repro/internal/rdma"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Errors returned by the rack.
var (
	ErrUnknownServer = errors.New("core: unknown server")
	ErrUnknownVM     = errors.New("core: unknown VM")
)

// ServerRole mirrors the five roles of Figure 7.
type ServerRole string

// The server roles of the paper's architecture.
const (
	RoleController          ServerRole = "global-mem-ctr"
	RoleSecondaryController ServerRole = "secondary-ctr"
	RoleUser                ServerRole = "user"
	RoleZombie              ServerRole = "zombie"
	RoleActive              ServerRole = "active"
)

// Server is one general-purpose server of the rack.
type Server struct {
	Name string
	// ID is the server's dense identity in the rack's name registry; the
	// rack's hot paths index slices and bitsets by it instead of hashing
	// Name.
	ID ident.ID

	Platform *acpi.Platform
	Device   *rdma.Device
	Agent    *memctl.Agent
	Energy   *energy.Accumulator

	role ServerRole
	vms  map[string]*GuestVM
}

// Role returns the server's current role.
func (s *Server) Role() ServerRole { return s.role }

// State returns the server's ACPI state.
func (s *Server) State() acpi.SleepState { return s.Platform.State() }

// VMs returns the names of the VMs hosted on the server, sorted.
func (s *Server) VMs() []string {
	names := make([]string, 0, len(s.vms))
	for n := range s.vms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GuestVM is a VM running on the rack with hypervisor-managed RAM Ext paging.
type GuestVM struct {
	Spec vm.VM
	Host string

	// Paging is the RAM Ext context; its Stats carry faults and time.
	Paging *hypervisor.RAMExt
	// LocalBytes and RemoteBytes describe the placement decision.
	LocalBytes  int64
	RemoteBytes int64
	// BorrowedBytes is the part of RemoteBytes served from OUTSIDE the rack
	// through the RemoteOverflow hook (cross-rack borrowing); BorrowedFrom
	// names the supplier. Zero / empty when the home rack served everything.
	BorrowedBytes int64
	BorrowedFrom  string
	// buffers are the home-rack remote buffers backing the remote part;
	// borrowed holds the cross-rack buffers obtained from the overflow.
	buffers  []*memctl.RemoteBuffer
	borrowed []*memctl.RemoteBuffer
	// plane is the VM's byte-serving data plane, built lazily by
	// Rack.MemplaneOf and closed by DestroyVM.
	plane *memplane.Plane
}

// BorrowedBuffers returns how many cross-rack buffers back the VM.
func (g *GuestVM) BorrowedBuffers() int { return len(g.borrowed) }

// RemoteOverflow supplies guaranteed remote memory from outside the rack when
// the rack's own controller runs dry. The fleet layer implements it with
// gateway agents registered on peer racks' controllers; the returned handles
// read and write over the peers' fabrics with the inter-rack premium.
type RemoteOverflow interface {
	// AvailableBytes reports how much the outside pool could currently
	// supply; the scheduler adds it to the rack's own admittable memory.
	AvailableBytes() int64
	// AllocExt allocates memSize bytes for the named VM placed on the given
	// host. It returns the handles plus a label naming the supplier(s).
	AllocExt(vmID, host string, memSize int64) ([]*memctl.RemoteBuffer, string, error)
	// Release returns borrowed handles when the VM is destroyed.
	Release(vmID string, bufs []*memctl.RemoteBuffer) error
}

// Config parameterises a Rack.
type Config struct {
	// Servers is the number of general-purpose servers (at least 1).
	Servers int
	// NamePrefix is prepended to every server name ("rack-00/" turns
	// "server-01" into "rack-00/server-01"), so a fleet of racks has globally
	// unique server identities without the racks sharing any state.
	NamePrefix string
	// Board describes every server's hardware; DefaultBoardSpec if zero.
	Board acpi.BoardSpec
	// MachineProfile is the per-server power model; the HP profile if nil.
	MachineProfile *energy.MachineProfile
	// BufferSize is the rack-wide remote buffer size; memctl default if 0.
	BufferSize int64
	// HostReservedBytes is the memory each server keeps for itself (host OS,
	// hypervisor); 1 GiB if 0.
	HostReservedBytes int64
	// CostModel is the RDMA fabric cost model; the default if zero.
	CostModel rdma.CostModel
}

// Rack is the assembled system.
type Rack struct {
	mu sync.Mutex

	cfg        Config
	fabric     *rdma.Fabric
	controller *memctl.GlobalController
	secondary  *memctl.SecondaryController
	scheduler  *placement.Scheduler
	admission  *placement.AdmissionController

	// names interns every server and VM identity of the rack; servers and
	// vms are dense slices indexed by ident.ID (servers are interned first,
	// so their IDs are exactly [0, len(servers))). sortedServers caches the
	// name-sorted order once — servers never join after construction — so
	// the per-placement host view never sorts or hashes strings.
	names         *ident.Registry
	servers       []*Server
	sortedServers []*Server
	vms           []*GuestVM // nil holes for destroyed VMs; index by ident.ID
	vmCount       int

	// overflow, when set, supplies remote memory the rack itself cannot
	// (cross-rack borrowing; see RemoteOverflow).
	overflow RemoteOverflow

	// dataChaos and dataNow arm data planes built by MemplaneOf with a fault
	// schedule (SetDataChaos).
	dataChaos *chaos.Plan
	dataNow   func() int64

	nowNs int64
}

// NewRack builds and wires a rack.
func NewRack(cfg Config) (*Rack, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("core: a rack needs at least one server, got %d", cfg.Servers)
	}
	if cfg.Board == (acpi.BoardSpec{}) {
		cfg.Board = acpi.DefaultBoardSpec()
	}
	if err := cfg.Board.Validate(); err != nil {
		return nil, err
	}
	if cfg.MachineProfile == nil {
		cfg.MachineProfile = energy.HPProfile()
	}
	if err := cfg.MachineProfile.Validate(); err != nil {
		return nil, err
	}
	if cfg.HostReservedBytes <= 0 {
		cfg.HostReservedBytes = 1 << 30
	}
	if cfg.CostModel == (rdma.CostModel{}) {
		cfg.CostModel = rdma.DefaultCostModel()
	}

	r := &Rack{
		cfg:       cfg,
		fabric:    rdma.NewFabric(cfg.CostModel),
		secondary: memctl.NewSecondaryController(),
		scheduler: placement.NewScheduler(),
		names:     ident.NewRegistry(),
	}
	opts := []memctl.Option{memctl.WithMirror(r.secondary)}
	if cfg.BufferSize > 0 {
		opts = append(opts, memctl.WithBufferSize(cfg.BufferSize))
	}
	r.controller = memctl.NewGlobalController(opts...)
	r.admission = placement.NewAdmissionController(0)

	resolve := func(id memctl.ServerID) *rdma.Device {
		s, ok := r.server(string(id))
		if !ok {
			return nil
		}
		return s.Device
	}

	for i := 0; i < cfg.Servers; i++ {
		name := fmt.Sprintf("%sserver-%02d", cfg.NamePrefix, i)
		platform, err := acpi.NewPlatform(cfg.Board)
		if err != nil {
			return nil, err
		}
		dev, err := r.fabric.AttachDevice(name)
		if err != nil {
			return nil, err
		}
		agent, err := memctl.NewAgent(memctl.AgentConfig{
			ID:            memctl.ServerID(name),
			Controller:    r.controller,
			Device:        dev,
			TotalMem:      int64(cfg.Board.MemoryBytes),
			ReservedMem:   cfg.HostReservedBytes,
			ResolveDevice: resolve,
		})
		if err != nil {
			return nil, err
		}
		r.servers = append(r.servers, &Server{
			Name:     name,
			ID:       r.names.Intern(name),
			Platform: platform,
			Device:   dev,
			Agent:    agent,
			Energy:   energy.NewAccumulator(cfg.MachineProfile),
			role:     RoleActive,
			vms:      make(map[string]*GuestVM),
		})
	}
	r.sortedServers = append([]*Server(nil), r.servers...)
	sort.Slice(r.sortedServers, func(i, j int) bool {
		return r.sortedServers[i].Name < r.sortedServers[j].Name
	})
	return r, nil
}

// server returns the named server. The registry and the dense server slice
// are immutable after construction, so no rack lock is needed.
func (r *Rack) server(name string) (*Server, bool) {
	id, ok := r.names.Lookup(name)
	if !ok || int(id) >= len(r.servers) {
		return nil, false
	}
	return r.servers[id], true
}

// vmLocked returns the named VM; the caller holds r.mu.
func (r *Rack) vmLocked(id string) (*GuestVM, bool) {
	vid, ok := r.names.Lookup(id)
	if !ok || int(vid) >= len(r.vms) || r.vms[vid] == nil {
		return nil, false
	}
	return r.vms[vid], true
}

// setVMLocked stores a VM under its dense ID; the caller holds r.mu.
func (r *Rack) setVMLocked(vid ident.ID, g *GuestVM) {
	for int(vid) >= len(r.vms) {
		r.vms = append(r.vms, nil)
	}
	r.vms[vid] = g
}

// Servers returns the server names, sorted (from the construction-time
// cache; the server set never changes).
func (r *Rack) Servers() []string {
	names := make([]string, len(r.sortedServers))
	for i, s := range r.sortedServers {
		names[i] = s.Name
	}
	return names
}

// Server returns the named server.
func (r *Rack) Server(name string) (*Server, error) {
	s, ok := r.server(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownServer, name)
	}
	return s, nil
}

// Controller exposes the global memory controller (for inspection).
func (r *Rack) Controller() *memctl.GlobalController { return r.controller }

// SetRemoteOverflow plugs an outside remote memory supplier into the rack.
// Pass nil to detach. The fleet layer installs one per rack; single-rack
// deployments leave it unset.
func (r *Rack) SetRemoteOverflow(o RemoteOverflow) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.overflow = o
}

// ResolveDevice returns the RDMA device of the named server, or nil. The
// fleet layer uses it to wire gateway agents into a peer rack's fabric.
func (r *Rack) ResolveDevice(name string) *rdma.Device {
	s, ok := r.server(name)
	if !ok {
		return nil
	}
	return s.Device
}

// AdmittableRemoteBytes returns the guaranteed remote memory the rack's own
// admission controller could still accept (capacity minus commitments).
func (r *Rack) AdmittableRemoteBytes() int64 {
	r.syncAdmissionCapacity()
	return r.admission.Available()
}

// HostCapacities returns the scheduler's current view of every server, in
// name order: CPU and local-memory headroom plus the power state. The fleet
// partitioner plans cross-rack placement against this snapshot.
func (r *Rack) HostCapacities() []placement.Host { return r.placementHosts() }

// Secondary exposes the secondary controller.
func (r *Rack) Secondary() *memctl.SecondaryController { return r.secondary }

// Fabric exposes the RDMA fabric (for stats).
func (r *Rack) Fabric() *rdma.Fabric { return r.fabric }

// Now returns the rack's simulated clock.
func (r *Rack) Now() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nowNs
}

// AdvanceClock moves simulated time forward on every server and the
// controllers (heartbeats), integrating energy.
func (r *Rack) AdvanceClock(deltaNs int64) {
	if deltaNs <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nowNs += deltaNs
	for _, s := range r.servers {
		s.Platform.AdvanceClock(deltaNs)
		s.Energy.AdvanceTo(r.nowNs)
	}
	r.secondary.Heartbeat(r.nowNs)
}

// FreeRemoteMemory returns the unallocated remote memory in the rack.
func (r *Rack) FreeRemoteMemory() int64 { return r.controller.FreeMemory() }

// PushToZombie suspends a server into the Sz state: its free memory is
// delegated to the controller, the platform transitions to Sz, and the RDMA
// device stops initiating but keeps serving one-sided operations.
func (r *Rack) PushToZombie(name string) error {
	s, ok := r.server(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownServer, name)
	}
	if len(s.vms) > 0 {
		return fmt.Errorf("core: server %s still hosts %d VMs", name, len(s.vms))
	}
	if err := s.Platform.CanEnter(acpi.Sz); err != nil {
		return err
	}
	if _, err := s.Agent.DelegateAndGoZombie(); err != nil {
		return err
	}
	if _, err := s.Platform.Suspend(acpi.Sz); err != nil {
		return err
	}
	// The NIC can no longer initiate (its driver is suspended with the CPU)
	// but the memory path keeps serving.
	s.Device.SetUp(false)
	s.Device.SetServing(true)
	s.Energy.SetState(r.Now(), acpi.Sz)
	r.mu.Lock()
	s.role = RoleZombie
	r.mu.Unlock()
	r.syncAdmissionCapacity()
	return nil
}

// Suspend suspends a server into a conventional sleep state (S3/S4/S5): its
// memory becomes unreachable, so nothing is delegated.
func (r *Rack) Suspend(name string, state acpi.SleepState) error {
	s, ok := r.server(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownServer, name)
	}
	if state == acpi.Sz {
		return r.PushToZombie(name)
	}
	if len(s.vms) > 0 {
		return fmt.Errorf("core: server %s still hosts %d VMs", name, len(s.vms))
	}
	if _, err := s.Platform.Suspend(state); err != nil {
		return err
	}
	s.Device.SetUp(false)
	s.Device.SetServing(false)
	s.Energy.SetState(r.Now(), state)
	r.mu.Lock()
	s.role = RoleActive
	r.mu.Unlock()
	return nil
}

// Wake resumes a suspended or zombie server to S0 and reclaims its delegated
// memory (all of it).
func (r *Rack) Wake(name string) error {
	s, ok := r.server(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownServer, name)
	}
	if _, err := s.Platform.Wake(acpi.WakeLAN); err != nil {
		return err
	}
	s.Device.SetUp(true)
	s.Device.SetServing(true)
	if _, err := s.Agent.WakeAndReclaim(-1); err != nil {
		return err
	}
	s.Energy.SetState(r.Now(), acpi.S0)
	r.mu.Lock()
	s.role = RoleActive
	r.mu.Unlock()
	r.syncAdmissionCapacity()
	return nil
}

// LRUZombie returns the zombie server with the fewest allocated buffers (the
// cheapest to wake), per GS_get_lru_zombie().
func (r *Rack) LRUZombie() (string, error) {
	id, err := r.controller.LRUZombie()
	return string(id), err
}

// syncAdmissionCapacity aligns the admission controller with the rack's
// delegatable memory.
func (r *Rack) syncAdmissionCapacity() {
	r.admission.SetCapacity(r.controller.FreeMemory() + r.admission.Committed())
}

// placementHosts builds the scheduler's host view, walking the cached
// name-sorted server list (no per-call sort, no name materialisation).
func (r *Rack) placementHosts() []placement.Host {
	r.mu.Lock()
	defer r.mu.Unlock()
	hosts := make([]placement.Host, 0, len(r.sortedServers))
	for _, s := range r.sortedServers {
		var usedCPU int
		var usedMem int64
		for _, g := range s.vms {
			usedCPU += g.Spec.VCPUs
			usedMem += g.LocalBytes
		}
		hosts = append(hosts, placement.Host{
			ID:          placement.HostID(s.Name),
			TotalCPUs:   r.cfg.Board.TotalCores(),
			UsedCPUs:    usedCPU,
			TotalMemory: int64(r.cfg.Board.MemoryBytes) - r.cfg.HostReservedBytes - r.lentBytes(s),
			UsedMemory:  usedMem,
			PoweredOn:   s.Platform.State() == acpi.S0,
		})
	}
	return hosts
}

// lentBytes returns the memory the server has delegated to the rack.
func (r *Rack) lentBytes(s *Server) int64 {
	size := r.cfg.BufferSize
	if size <= 0 {
		size = memctl.DefaultBufferSize
	}
	return int64(s.Agent.ServedBuffers()) * size
}

// CreateVMOptions tunes VM creation.
type CreateVMOptions struct {
	// Policy is the page replacement policy; Mixed when nil.
	Policy pagepolicy.Policy
	// Strategy is the placement strategy; stacking by default.
	Strategy placement.Strategy
	// SimPages caps the simulated page count of the paging context.
	SimPages int
	// ExcludeHosts drops the named servers from the placement candidates —
	// the fleet layer uses it to keep placement off crashed servers. Shared
	// read-only across concurrent shards; nil excludes nothing.
	ExcludeHosts *ident.NameSet
}

// CreateVM places a VM on the rack, allocating its remote memory (if any)
// with the guaranteed GS_alloc_ext path, and builds the hypervisor paging
// context for it.
func (r *Rack) CreateVM(spec vm.VM, opts CreateVMOptions) (*GuestVM, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, dup := r.vmLocked(spec.ID); dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: VM %s already exists", spec.ID)
	}
	r.mu.Unlock()

	r.syncAdmissionCapacity()
	r.mu.Lock()
	overflow := r.overflow
	r.mu.Unlock()
	remoteAvail := r.admission.Available()
	if overflow != nil {
		remoteAvail += overflow.AvailableBytes()
	}
	hosts := r.placementHosts()
	if opts.ExcludeHosts.Len() > 0 {
		alive := hosts[:0]
		for _, h := range hosts {
			if !opts.ExcludeHosts.Has(string(h.ID)) {
				alive = append(alive, h)
			}
		}
		hosts = alive
	}
	decision, err := r.scheduler.Place(hosts, placement.Request{
		VM:                    spec,
		RemoteMemoryAvailable: remoteAvail,
		Strategy:              opts.Strategy,
	})
	if err != nil {
		return nil, err
	}

	host, _ := r.server(string(decision.Host))

	guest := &GuestVM{Spec: spec, Host: host.Name, LocalBytes: decision.LocalBytes, RemoteBytes: decision.RemoteBytes}

	// Allocate the remote part: the home rack first, and — when its own
	// controller cannot guarantee the allocation — entirely from the overflow
	// supplier (a peer rack reached over the inter-rack fabric).
	if decision.RemoteBytes > 0 {
		var homeErr error
		if homeErr = r.admission.Admit(decision.RemoteBytes); homeErr == nil {
			buffers, err := host.Agent.RequestExt(decision.RemoteBytes)
			if err != nil {
				r.admission.Release(decision.RemoteBytes)
				homeErr = err
			} else {
				guest.buffers = buffers
			}
		}
		if guest.buffers == nil {
			if overflow == nil {
				return nil, homeErr
			}
			borrowed, from, err := overflow.AllocExt(spec.ID, host.Name, decision.RemoteBytes)
			if err != nil {
				return nil, fmt.Errorf("core: rack dry (%v) and cross-rack borrow failed: %w", homeErr, err)
			}
			guest.borrowed = borrowed
			guest.BorrowedBytes = decision.RemoteBytes
			guest.BorrowedFrom = from
		}
	}

	// Build the paging context. The page count is scaled for tractability;
	// the local fraction of the placement decision is preserved.
	simPages := opts.SimPages
	if simPages <= 0 {
		simPages = workload.DefaultSimPages
	}
	totalPages := spec.ReservedPages()
	if totalPages > simPages {
		totalPages = simPages
	}
	localFrac := float64(decision.LocalBytes) / float64(spec.ReservedBytes)
	localFrames := int(float64(totalPages) * localFrac)
	if localFrames < 1 {
		localFrames = 1
	}
	policy := opts.Policy
	if policy == nil {
		policy = pagepolicy.NewMixed(pagepolicy.DefaultCost(), pagepolicy.DefaultMixedWindow)
	}
	var store hypervisor.RemoteStore
	if localFrames < totalPages {
		backing := guest.buffers
		if len(guest.borrowed) > 0 {
			backing = append(append([]*memctl.RemoteBuffer(nil), guest.buffers...), guest.borrowed...)
		}
		store = newBufferStore(backing, totalPages-localFrames)
	}
	paging, err := hypervisor.NewRAMExt(hypervisor.Config{
		Pages:       totalPages,
		LocalFrames: localFrames,
		Policy:      policy,
		Remote:      store,
	})
	if err != nil {
		if guest.buffers != nil {
			_ = host.Agent.ReleaseBuffers(guest.buffers)
			r.admission.Release(decision.RemoteBytes)
		}
		if len(guest.borrowed) > 0 && overflow != nil {
			_ = overflow.Release(spec.ID, guest.borrowed)
		}
		return nil, err
	}
	guest.Paging = paging

	r.mu.Lock()
	host.vms[spec.ID] = guest
	r.setVMLocked(r.names.Intern(spec.ID), guest)
	r.vmCount++
	r.mu.Unlock()

	// Hosting VMs makes the server a user of remote memory (or plainly
	// active); update utilization for energy accounting.
	r.mu.Lock()
	if decision.RemoteBytes > 0 {
		host.role = RoleUser
	}
	util := float64(len(host.vms)) * float64(spec.VCPUs) / float64(r.cfg.Board.TotalCores())
	if util > 1 {
		util = 1
	}
	r.mu.Unlock()
	host.Energy.SetUtilization(r.Now(), util)
	return guest, nil
}

// DestroyVM removes a VM and releases its remote memory — home-rack buffers
// to the rack's controller, borrowed ones back through the overflow supplier.
func (r *Rack) DestroyVM(id string) error {
	r.mu.Lock()
	guest, ok := r.vmLocked(id)
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownVM, id)
	}
	host, _ := r.server(guest.Host)
	overflow := r.overflow
	if vid, ok := r.names.Lookup(id); ok {
		r.vms[vid] = nil
		r.vmCount--
	}
	delete(host.vms, id)
	r.mu.Unlock()

	if guest.plane != nil {
		// The plane was seeded with the VM's home-rack buffers and owns them:
		// its Close releases the reservation together with any growth grants.
		if err := guest.plane.Close(); err != nil {
			return err
		}
	} else if len(guest.buffers) > 0 {
		if err := host.Agent.ReleaseBuffers(guest.buffers); err != nil {
			return err
		}
	}
	if len(guest.buffers) > 0 {
		r.admission.Release(guest.RemoteBytes - guest.BorrowedBytes)
	}
	if len(guest.borrowed) > 0 {
		if overflow != nil {
			return overflow.Release(id, guest.borrowed)
		}
		// The supplier was detached; hand the buffers straight back to their
		// owning agents.
		return memctl.ReleaseHandles(guest.borrowed)
	}
	return nil
}

// VM returns a VM by name.
func (r *Rack) VM(id string) (*GuestVM, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.vmLocked(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVM, id)
	}
	return g, nil
}

// VMs returns the names of every VM on the rack, sorted (the rendering edge:
// live VM IDs map back to names here, not in the hot paths).
func (r *Rack) VMs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, r.vmCount)
	for vid, g := range r.vms {
		if g != nil {
			names = append(names, r.names.Name(ident.ID(vid)))
		}
	}
	sort.Strings(names)
	return names
}

// RunWorkload replays a workload stream against a VM's paging context and
// returns the accumulated paging statistics.
func (r *Rack) RunWorkload(vmID string, kind workload.Kind, iterations int, seed int64) (hypervisor.Stats, error) {
	guest, err := r.VM(vmID)
	if err != nil {
		return hypervisor.Stats{}, err
	}
	stream, err := workload.NewStream(workload.ProfileOf(kind), guest.Paging.Pages(), iterations, seed)
	if err != nil {
		return hypervisor.Stats{}, err
	}
	for {
		a, ok := stream.Next()
		if !ok {
			break
		}
		if _, err := guest.Paging.Access(a.Page, a.Write); err != nil {
			return guest.Paging.Stats(), err
		}
	}
	return guest.Paging.Stats(), nil
}

// EnergyReport summarises per-server energy consumption.
type EnergyReport struct {
	Server string
	State  acpi.SleepState
	Joules float64
}

// EnergyReportAll returns the energy report of every server, sorted by name.
func (r *Rack) EnergyReportAll() []EnergyReport {
	out := make([]EnergyReport, 0, len(r.sortedServers))
	for _, s := range r.sortedServers {
		out = append(out, EnergyReport{Server: s.Name, State: s.Platform.State(), Joules: s.Energy.Joules()})
	}
	return out
}

// TotalEnergyJoules sums the rack's energy consumption.
func (r *Rack) TotalEnergyJoules() float64 {
	var total float64
	for _, rep := range r.EnergyReportAll() {
		total += rep.Joules
	}
	return total
}

// bufferStore adapts a set of memctl remote buffers into the hypervisor's
// page-granular RemoteStore. Pages are spread across the buffers so that a
// single remote server failure affects only part of a VM's remote memory.
type bufferStore struct {
	buffers []*memctl.RemoteBuffer
	slots   int
	perBuf  int
}

// newBufferStore sizes a store of at least minSlots pages over the buffers.
func newBufferStore(buffers []*memctl.RemoteBuffer, minSlots int) *bufferStore {
	if len(buffers) == 0 {
		return &bufferStore{}
	}
	pageSize := int64(vm.DefaultPageSize)
	perBuf := int(buffers[0].Size / pageSize)
	slots := perBuf * len(buffers)
	if slots < minSlots {
		slots = minSlots // the RAMExt constructor will reject it explicitly
	}
	return &bufferStore{buffers: buffers, slots: slots, perBuf: perBuf}
}

// Slots implements hypervisor.RemoteStore.
func (b *bufferStore) Slots() int { return b.slots }

// locate maps a slot to (buffer, offset), striping across buffers.
func (b *bufferStore) locate(slot int) (*memctl.RemoteBuffer, int64, error) {
	if len(b.buffers) == 0 {
		return nil, 0, fmt.Errorf("core: no remote buffers")
	}
	buf := b.buffers[slot%len(b.buffers)]
	idx := slot / len(b.buffers)
	off := int64(idx) * int64(vm.DefaultPageSize)
	if off+int64(vm.DefaultPageSize) > buf.Size {
		return nil, 0, fmt.Errorf("core: slot %d outside buffer capacity", slot)
	}
	return buf, off, nil
}

// WritePage implements hypervisor.RemoteStore with a one-sided RDMA WRITE.
func (b *bufferStore) WritePage(slot int, page []byte) (int64, error) {
	buf, off, err := b.locate(slot)
	if err != nil {
		return 0, err
	}
	return buf.WriteRemote(off, page)
}

// ReadPage implements hypervisor.RemoteStore with a one-sided RDMA READ.
func (b *bufferStore) ReadPage(slot int, dst []byte) (int64, error) {
	buf, off, err := b.locate(slot)
	if err != nil {
		return 0, err
	}
	return buf.ReadRemote(off, dst)
}
