package core

import (
	"fmt"
	"sort"

	"repro/internal/acpi"
	"repro/internal/consolidation"
	"repro/internal/memctl"
	"repro/internal/migration"
)

// This file adds the ZombieStack orchestration on top of the rack: the
// migration protocol of Section 5.3, the periodic consolidation loop of
// Section 5.2 and the transparent fail-over of the global memory controller
// described in Section 4.1.

// MigrateVM moves a VM to another host with the ZombieStack protocol: the VM
// is paused, only the hot pages resident in the source host's local memory
// are copied, and the ownership of its remote buffers is re-pointed to the
// destination — the data in the zombie servers' memory does not move.
func (r *Rack) MigrateVM(vmID, destName string) (migration.Result, error) {
	guest, err := r.VM(vmID)
	if err != nil {
		return migration.Result{}, err
	}
	dest, ok := r.server(destName)
	src, _ := r.server(guest.Host)
	if !ok {
		return migration.Result{}, fmt.Errorf("%w: %s", ErrUnknownServer, destName)
	}
	if destName == guest.Host {
		return migration.Result{}, fmt.Errorf("core: VM %s is already on %s", vmID, destName)
	}
	if dest.Platform.State() != acpi.S0 {
		return migration.Result{}, fmt.Errorf("core: destination %s is not awake (%s)", destName, dest.Platform.State())
	}

	// The destination must hold the VM's local part (the hot pages); the
	// remote part stays where it is.
	destFree := int64(r.cfg.Board.MemoryBytes) - r.cfg.HostReservedBytes - r.lentBytes(dest)
	r.mu.Lock()
	for _, g := range dest.vms {
		destFree -= g.LocalBytes
	}
	r.mu.Unlock()
	if destFree < guest.LocalBytes {
		return migration.Result{}, fmt.Errorf("core: destination %s has %d bytes free, VM needs %d locally",
			destName, destFree, guest.LocalBytes)
	}

	// Estimate the transfer with the protocol model. The WSS ratio comes from
	// the VM spec; the local fraction from the placement decision.
	proto := migration.NewZombieStack()
	proto.BufferSize = r.controller.BufferSize()
	localFrac := float64(guest.LocalBytes) / float64(guest.Spec.ReservedBytes)
	if localFrac <= 0 {
		localFrac = 1
	}
	res, err := proto.Migrate(guest.Spec, guest.Spec.WSSRatio(), localFrac)
	if err != nil {
		return migration.Result{}, err
	}

	// Ownership-pointer update for the remote buffers.
	if len(guest.buffers) > 0 {
		ids := make([]memctl.BufferID, len(guest.buffers))
		for i, b := range guest.buffers {
			ids[i] = b.ID
		}
		if err := r.controller.TransferBuffers(memctl.ServerID(guest.Host), memctl.ServerID(destName), ids); err != nil {
			return migration.Result{}, err
		}
	}

	// Move the bookkeeping and advance the simulated clock by the migration
	// duration (the VM is paused for it under the post-copy-style protocol).
	r.mu.Lock()
	delete(src.vms, vmID)
	dest.vms[vmID] = guest
	guest.Host = destName
	if guest.RemoteBytes > 0 {
		dest.role = RoleUser
	}
	r.mu.Unlock()
	r.AdvanceClock(int64(res.DurationNs))

	// Update CPU utilization accounting on both hosts.
	r.refreshUtilization(src)
	r.refreshUtilization(dest)
	return res, nil
}

// refreshUtilization re-derives a host's CPU utilization from its VMs.
func (r *Rack) refreshUtilization(s *Server) {
	r.mu.Lock()
	var vcpus int
	for _, g := range s.vms {
		vcpus += g.Spec.VCPUs
	}
	util := float64(vcpus) / float64(r.cfg.Board.TotalCores())
	if util > 1 {
		util = 1
	}
	r.mu.Unlock()
	s.Energy.SetUtilization(r.Now(), util)
}

// ConsolidationReport describes one pass of the rack consolidation loop.
type ConsolidationReport struct {
	// Underloaded and Overloaded are the hosts the detector classified.
	Underloaded []string
	Overloaded  []string
	// Migrated maps VM IDs to their destination hosts.
	Migrated map[string]string
	// PushedToZombie lists hosts suspended into Sz by this pass.
	PushedToZombie []string
	// Woken lists hosts woken from Sz to receive VMs.
	Woken []string
}

// ConsolidateOnce runs one pass of the ZombieStack consolidation loop
// (Section 5.2): detect underloaded and overloaded hosts, migrate their VMs
// with the 30%-of-WSS placement rule, push emptied hosts into the Sz state
// and wake zombies when nothing else fits.
func (r *Rack) ConsolidateOnce() (ConsolidationReport, error) {
	report := ConsolidationReport{Migrated: make(map[string]string)}

	// Build the planner's view of the rack.
	loads := make([]consolidation.HostLoad, 0, len(r.sortedServers))
	for _, s := range r.sortedServers {
		r.mu.Lock()
		var vms []consolidation.VMDemand
		var usedCPU float64
		var usedLocal int64
		for _, g := range s.vms {
			usedCPU += float64(g.Spec.VCPUs)
			usedLocal += g.LocalBytes
			vms = append(vms, consolidation.VMDemand{
				ID:           g.Spec.ID,
				BookedCPU:    float64(g.Spec.VCPUs),
				BookedMemGiB: float64(g.Spec.ReservedBytes) / float64(1<<30),
				UsedCPU:      float64(g.Spec.VCPUs) * 0.3,
				UsedMemGiB:   float64(g.Spec.WSSBytes) / float64(1<<30),
			})
		}
		sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
		freeLocal := int64(r.cfg.Board.MemoryBytes) - r.cfg.HostReservedBytes - r.lentBytes(s) - usedLocal
		state := s.Platform.State()
		r.mu.Unlock()
		loads = append(loads, consolidation.HostLoad{
			ID:             s.Name,
			CPUUtilization: usedCPU / float64(r.cfg.Board.TotalCores()),
			VMs:            vms,
			FreeMemGiB:     float64(freeLocal) / float64(1<<30),
			Suspended:      state != acpi.S0,
		})
	}

	plan := consolidation.PlanSteps(loads, consolidation.DefaultStepConfig(true))
	report.Underloaded = plan.HostNames(plan.UnderloadedHosts)
	report.Overloaded = plan.HostNames(plan.OverloadedHosts)

	// Wake the hosts the planner needs before migrating onto them.
	for _, name := range plan.HostNames(plan.Wake) {
		if err := r.Wake(name); err != nil {
			return report, fmt.Errorf("core: consolidation wake %s: %w", name, err)
		}
		report.Woken = append(report.Woken, name)
	}

	// Execute the migrations in deterministic order: sorted by VM name, the
	// same order the old map-keyed plan was executed in.
	moves := append([]consolidation.Migration(nil), plan.Migrations...)
	sort.Slice(moves, func(i, j int) bool {
		return plan.Names.Name(moves[i].VM) < plan.Names.Name(moves[j].VM)
	})
	for _, m := range moves {
		id, dest := plan.Names.Name(m.VM), plan.Names.Name(m.Dest)
		if _, err := r.MigrateVM(id, dest); err != nil {
			// A failed migration keeps the VM where it is; the source host
			// simply cannot be suspended this round.
			continue
		}
		report.Migrated[id] = dest
	}

	// Suspend the emptied hosts into the zombie state so their memory keeps
	// serving the rack.
	for _, name := range plan.HostNames(plan.Suspend) {
		s, err := r.Server(name)
		if err != nil {
			continue
		}
		r.mu.Lock()
		empty := len(s.vms) == 0
		r.mu.Unlock()
		if !empty {
			continue
		}
		if err := r.PushToZombie(name); err != nil {
			continue
		}
		report.PushedToZombie = append(report.PushedToZombie, name)
	}
	return report, nil
}

// FailoverController simulates the loss of the global memory controller: the
// secondary controller detects the missed heartbeats, promotes itself and
// rebuilds the controller state from its mirrored operation log. The rack
// then points every agent-facing operation at the rebuilt controller.
//
// The data held in zombie servers' memory is unaffected by the fail-over;
// only the allocation metadata moves, which is why the paper calls the
// secondary's takeover transparent.
func (r *Rack) FailoverController(nowNs int64) (*memctl.GlobalController, error) {
	if !r.secondary.Tick(nowNs) {
		return nil, fmt.Errorf("core: the primary controller is still heartbeating; no fail-over")
	}
	opts := []memctl.Option{}
	if r.cfg.BufferSize > 0 {
		opts = append(opts, memctl.WithBufferSize(r.cfg.BufferSize))
	}
	rebuilt := r.secondary.Rebuild(opts...)
	r.mu.Lock()
	r.controller = rebuilt
	r.mu.Unlock()
	// Every agent re-establishes its channel with the promoted controller so
	// reclaim notifications and scavenging keep working after the take-over.
	for _, s := range r.sortedServers {
		if err := s.Agent.Retarget(rebuilt); err != nil {
			return nil, fmt.Errorf("core: fail-over retarget %s: %w", s.Name, err)
		}
	}
	r.syncAdmissionCapacity()
	return rebuilt, nil
}
