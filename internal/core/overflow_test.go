package core

import (
	"strings"
	"testing"

	"repro/internal/acpi"
	"repro/internal/memctl"
	"repro/internal/vm"
)

// stubOverflow backs the RemoteOverflow hook with a second, out-of-rack
// memctl controller, the way the fleet layer does with a peer rack.
type stubOverflow struct {
	lender  *memctl.GlobalController
	gateway *memctl.Agent

	allocs   int
	released int
}

func newStubOverflow(t *testing.T, lendBytes int64) *stubOverflow {
	t.Helper()
	lender := memctl.NewGlobalController()
	donor, err := memctl.NewAgent(memctl.AgentConfig{
		ID: "peer/server-00", Controller: lender, TotalMem: 2 * lendBytes, ReservedMem: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.DelegateWhileActive(2*lendBytes - lendBytes); err != nil {
		t.Fatal(err)
	}
	gateway, err := memctl.NewAgent(memctl.AgentConfig{
		ID: "gw/test-rack", Controller: lender, TotalMem: 1, ReservedMem: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &stubOverflow{lender: lender, gateway: gateway}
}

func (s *stubOverflow) AvailableBytes() int64 { return s.lender.FreeMemory() }

func (s *stubOverflow) AllocExt(vmID, host string, memSize int64) ([]*memctl.RemoteBuffer, string, error) {
	bufs, err := s.gateway.RequestExt(memSize)
	if err != nil {
		return nil, "", err
	}
	s.allocs++
	return bufs, "stub-peer", nil
}

func (s *stubOverflow) Release(vmID string, bufs []*memctl.RemoteBuffer) error {
	s.released += len(bufs)
	return memctl.ReleaseHandles(bufs)
}

func TestCreateVMBorrowsFromOverflowWhenRackDry(t *testing.T) {
	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = 4 << 30
	r, err := NewRack(Config{Servers: 2, Board: board})
	if err != nil {
		t.Fatal(err)
	}
	// No zombies: the rack's own controller has nothing to lend.
	if free := r.FreeRemoteMemory(); free != 0 {
		t.Fatalf("rack should start dry, has %d", free)
	}

	spec := vm.New("hungry", 5<<30, 2<<30)
	if _, err := r.CreateVM(spec, CreateVMOptions{}); err == nil {
		t.Fatal("a dry rack without an overflow must reject the memory-hungry VM")
	}

	overflow := newStubOverflow(t, 4<<30)
	r.SetRemoteOverflow(overflow)
	guest, err := r.CreateVM(spec, CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if guest.RemoteBytes == 0 {
		t.Fatal("the VM should need remote memory")
	}
	if guest.BorrowedBytes != guest.RemoteBytes {
		t.Fatalf("borrowed %d bytes, want the whole remote part %d", guest.BorrowedBytes, guest.RemoteBytes)
	}
	if guest.BorrowedFrom != "stub-peer" {
		t.Fatalf("BorrowedFrom = %q, want stub-peer", guest.BorrowedFrom)
	}
	if guest.BorrowedBuffers() == 0 {
		t.Fatal("borrowed handles should back the VM")
	}
	if overflow.allocs != 1 {
		t.Fatalf("overflow allocs = %d, want 1", overflow.allocs)
	}

	borrowed := guest.BorrowedBuffers()
	if err := r.DestroyVM(spec.ID); err != nil {
		t.Fatal(err)
	}
	if overflow.released != borrowed {
		t.Fatalf("destroy released %d borrowed buffers, want %d", overflow.released, borrowed)
	}
	if free := overflow.lender.FreeMemory(); free == 0 {
		t.Fatal("the lender should get its memory back")
	}
}

func TestNamePrefixIsolatesServerNames(t *testing.T) {
	r, err := NewRack(Config{Servers: 2, NamePrefix: "rack-07/"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Servers() {
		if !strings.HasPrefix(name, "rack-07/server-") {
			t.Fatalf("server name %q misses the rack prefix", name)
		}
	}
	if r.ResolveDevice("rack-07/server-01") == nil {
		t.Fatal("ResolveDevice should find a prefixed server")
	}
	if r.ResolveDevice("server-01") != nil {
		t.Fatal("ResolveDevice must not resolve unprefixed names")
	}
}

func TestFailoverRetargetsAgents(t *testing.T) {
	r := testRack(t, 3)
	if err := r.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	old := r.Controller()
	rebuilt, err := r.FailoverController(r.Now() + 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == old {
		t.Fatal("fail-over should install a new controller")
	}
	// The zombie's agent must now talk to the rebuilt controller: waking it
	// reclaims through the new instance and flips its role there.
	if err := r.Wake("server-02"); err != nil {
		t.Fatal(err)
	}
	if role, err := rebuilt.Role("server-02"); err != nil || role != memctl.RoleActive {
		t.Fatalf("rebuilt controller role = %v (err %v), want active", role, err)
	}
	if len(rebuilt.Zombies()) != 0 {
		t.Fatal("no zombies should remain on the rebuilt controller")
	}
}
