package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/swapdev"
)

func TestCreateSwapDeviceBestEffort(t *testing.T) {
	r := testRack(t, 3)
	// No remote memory yet: the best-effort allocation returns no device.
	dev, err := r.CreateSwapDevice("server-00", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Fatal("without remote memory there should be no swap device")
	}
	// With a zombie server, the device appears (possibly smaller than asked).
	if err := r.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	dev, err = r.CreateSwapDevice("server-00", 10<<30)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil || dev.Slots() == 0 {
		t.Fatal("expected a (possibly smaller) swap device")
	}
	if dev.Kind() != swapdev.RemoteRAM {
		t.Errorf("kind = %v", dev.Kind())
	}
	if dev.Buffers() == 0 {
		t.Error("device should be backed by remote buffers")
	}
	// Validation of bad arguments.
	if _, err := r.CreateSwapDevice("ghost", 1<<20); !errors.Is(err, ErrUnknownServer) {
		t.Error("unknown host should fail")
	}
	if _, err := r.CreateSwapDevice("server-00", 0); err == nil {
		t.Error("zero size should fail")
	}
}

func TestRemoteSwapDeviceRoundTrip(t *testing.T) {
	r := testRack(t, 2)
	if err := r.PushToZombie("server-01"); err != nil {
		t.Fatal(err)
	}
	dev, err := r.CreateSwapDevice("server-00", 64<<20)
	if err != nil || dev == nil {
		t.Fatalf("swap device: %v %v", dev, err)
	}
	page := bytes.Repeat([]byte{0xCD}, swapdev.PageSize)
	wlat, err := dev.SwapOut(7, page)
	if err != nil {
		t.Fatal(err)
	}
	if wlat <= 0 {
		t.Error("swap-out latency should be positive")
	}
	dst := make([]byte, swapdev.PageSize)
	rlat, err := dev.SwapIn(7, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rlat <= 0 || !bytes.Equal(page, dst) {
		t.Fatal("swap-in corrupted the page")
	}
	// The traffic went through the RDMA fabric, and every write was mirrored.
	if r.Fabric().Stats().Writes == 0 || r.Fabric().Stats().Reads == 0 {
		t.Error("swap traffic should ride the fabric")
	}
	if dev.MirrorWrites() == 0 {
		t.Error("swap-outs must be mirrored locally for fault tolerance")
	}
	st := dev.Stats()
	if st.SwapOuts != 1 || st.SwapIns != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Error paths.
	if _, err := dev.SwapIn(8, dst); !errors.Is(err, swapdev.ErrEmptySlot) {
		t.Error("empty slot should fail")
	}
	if _, err := dev.SwapOut(-1, page); !errors.Is(err, swapdev.ErrSlotOutOfRange) {
		t.Error("bad slot should fail")
	}
	if _, err := dev.SwapOut(0, make([]byte, swapdev.PageSize+1)); err == nil {
		t.Error("oversized page should fail")
	}
	dev.Free(7)
	if _, err := dev.SwapIn(7, dst); !errors.Is(err, swapdev.ErrEmptySlot) {
		t.Error("freed slot should be empty")
	}
	if err := dev.Release(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Release(); err != nil {
		t.Fatal("double release should be a no-op")
	}
}

func TestRemoteSwapDeviceSurvivesReclaim(t *testing.T) {
	// The fault-tolerance path of the split-driver model: when the zombie
	// reclaims its memory, swapped pages are served from the local mirror.
	r := testRack(t, 2)
	if err := r.PushToZombie("server-01"); err != nil {
		t.Fatal(err)
	}
	dev, err := r.CreateSwapDevice("server-00", 64<<20)
	if err != nil || dev == nil {
		t.Fatalf("swap device: %v %v", dev, err)
	}
	page := bytes.Repeat([]byte{0x42}, swapdev.PageSize)
	if _, err := dev.SwapOut(3, page); err != nil {
		t.Fatal(err)
	}
	fastLat, err := dev.SwapIn(3, make([]byte, swapdev.PageSize))
	if err != nil {
		t.Fatal(err)
	}

	// The zombie wakes up and reclaims everything; the device degrades to its
	// local mirror.
	if err := r.Wake("server-01"); err != nil {
		t.Fatal(err)
	}
	dev.MarkReclaimed()
	if !dev.Reclaimed() {
		t.Fatal("device should report the reclaim")
	}
	dst := make([]byte, swapdev.PageSize)
	slowLat, err := dev.SwapIn(3, dst)
	if err != nil {
		t.Fatalf("swap-in after reclaim should fall back to the mirror: %v", err)
	}
	if !bytes.Equal(page, dst) {
		t.Fatal("mirror returned corrupted data")
	}
	if slowLat <= fastLat {
		t.Errorf("the mirror path (%d ns) should be slower than remote RAM (%d ns)", slowLat, fastLat)
	}
	// Writes after the reclaim also land on the mirror.
	if _, err := dev.SwapOut(4, page); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.SwapIn(4, dst); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitSDOnRemoteSwapDevice(t *testing.T) {
	// Wire the guest-visible Explicit SD model to the rack-backed device:
	// the full paper stack for the second remote-memory function.
	r := testRack(t, 2)
	if err := r.PushToZombie("server-01"); err != nil {
		t.Fatal(err)
	}
	dev, err := r.CreateSwapDevice("server-00", 64<<20)
	if err != nil || dev == nil {
		t.Fatalf("swap device: %v %v", dev, err)
	}
	esd, err := hypervisor.NewExplicitSD(hypervisor.ExplicitConfig{
		Pages:       256,
		LocalFrames: 96,
		Device:      dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < 256; p++ {
			if _, err := esd.Access(p, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if esd.SwapTraffic() == 0 {
		t.Fatal("the guest should have swapped")
	}
	if dev.Stats().SwapOuts == 0 || dev.Stats().SwapIns == 0 {
		t.Error("the rack-backed device should have seen the traffic")
	}
	if r.Fabric().Stats().BytesWritten == 0 {
		t.Error("the zombie server's memory should have received the pages")
	}
}
