package core

import (
	"fmt"
	"sync"

	"repro/internal/memctl"
	"repro/internal/swapdev"
	"repro/internal/vm"
)

// This file implements the rack-level Explicit SD function (Section 4.5): a
// swap device exposed to a VM whose slots are backed by remote memory buffers
// allocated best-effort through GS_alloc_swap. Swap-outs are one-sided RDMA
// writes to the zombie (or active) server holding the buffer, and every write
// is also mirrored asynchronously to local storage so the data survives a
// reclaim of the remote memory (the split-driver model's fault-tolerance
// path).

// RemoteSwapDevice is a swapdev.Device backed by remote memory buffers.
type RemoteSwapDevice struct {
	mu sync.Mutex

	rack    *Rack
	host    *Server
	buffers []*memctl.RemoteBuffer
	mirror  *swapdev.Mirror

	slots      int
	perBuffer  int
	reclaimed  bool
	stats      swapdev.Stats
	slotInUse  []bool
	mirrorOnly []bool // slot served from the local mirror after a reclaim
}

var _ swapdev.Device = (*RemoteSwapDevice)(nil)

// CreateSwapDevice allocates a best-effort remote swap device of up to
// requestBytes for the named host (the paper's GS_alloc_swap path). The
// returned device may be smaller than requested when the rack has little
// free remote memory; it is nil (with no error) when none is available.
func (r *Rack) CreateSwapDevice(hostName string, requestBytes int64) (*RemoteSwapDevice, error) {
	host, err := r.Server(hostName)
	if err != nil {
		return nil, err
	}
	if requestBytes <= 0 {
		return nil, fmt.Errorf("core: swap device needs a positive size")
	}
	buffers, err := host.Agent.RequestSwap(requestBytes)
	if err != nil {
		return nil, err
	}
	if len(buffers) == 0 {
		return nil, nil
	}
	perBuffer := int(buffers[0].Size / int64(vm.DefaultPageSize))
	slots := perBuffer * len(buffers)
	localMirror, err := swapdev.New(swapdev.LocalHDD, slots)
	if err != nil {
		return nil, err
	}
	return &RemoteSwapDevice{
		rack:       r,
		host:       host,
		buffers:    buffers,
		mirror:     swapdev.NewMirror(localMirror),
		slots:      slots,
		perBuffer:  perBuffer,
		slotInUse:  make([]bool, slots),
		mirrorOnly: make([]bool, slots),
	}, nil
}

// Kind implements swapdev.Device.
func (d *RemoteSwapDevice) Kind() swapdev.Kind { return swapdev.RemoteRAM }

// Slots implements swapdev.Device.
func (d *RemoteSwapDevice) Slots() int { return d.slots }

// Buffers returns the number of remote buffers backing the device.
func (d *RemoteSwapDevice) Buffers() int { return len(d.buffers) }

// locate maps a slot to its backing buffer and offset, striping across the
// buffers so a single remote server failure only affects part of the device.
func (d *RemoteSwapDevice) locate(slot int) (*memctl.RemoteBuffer, int64, error) {
	if slot < 0 || slot >= d.slots {
		return nil, 0, swapdev.ErrSlotOutOfRange
	}
	buf := d.buffers[slot%len(d.buffers)]
	off := int64(slot/len(d.buffers)) * int64(vm.DefaultPageSize)
	return buf, off, nil
}

// SwapOut implements swapdev.Device: a one-sided RDMA write to the remote
// buffer plus an asynchronous local mirror write.
func (d *RemoteSwapDevice) SwapOut(slot int, page []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(page) > swapdev.PageSize {
		return 0, fmt.Errorf("core: page of %d bytes exceeds %d", len(page), swapdev.PageSize)
	}
	buf, off, err := d.locate(slot)
	if err != nil {
		return 0, err
	}
	var lat int64
	if d.reclaimed || d.mirrorOnly[slot] {
		// The remote memory was reclaimed: fall back to the local mirror only.
		d.mirrorOnly[slot] = true
		lat = swapdev.LatencyOf(swapdev.LocalHDD).WriteNs
	} else {
		lat, err = buf.WriteRemote(off, page)
		if err != nil {
			return 0, err
		}
	}
	d.mirror.WriteAsync(uint64(slot), page)
	d.slotInUse[slot] = true
	d.stats.SwapOuts++
	d.stats.BytesWritten += uint64(len(page))
	d.stats.TotalNs += lat
	return lat, nil
}

// SwapIn implements swapdev.Device: a one-sided RDMA read, or the slow local
// mirror path when the remote copy has been reclaimed.
func (d *RemoteSwapDevice) SwapIn(slot int, dst []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf, off, err := d.locate(slot)
	if err != nil {
		return 0, err
	}
	if !d.slotInUse[slot] {
		return 0, swapdev.ErrEmptySlot
	}
	var lat int64
	if d.reclaimed || d.mirrorOnly[slot] {
		lat, err = d.mirror.Recover(uint64(slot), dst)
	} else {
		lat, err = buf.ReadRemote(off, dst)
	}
	if err != nil {
		return 0, err
	}
	d.stats.SwapIns++
	d.stats.BytesRead += uint64(len(dst))
	d.stats.TotalNs += lat
	return lat, nil
}

// Free implements swapdev.Device.
func (d *RemoteSwapDevice) Free(slot int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if slot >= 0 && slot < d.slots {
		d.slotInUse[slot] = false
		d.mirrorOnly[slot] = false
	}
}

// Stats implements swapdev.Device.
func (d *RemoteSwapDevice) Stats() swapdev.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// MirrorWrites returns the number of asynchronous local mirror writes.
func (d *RemoteSwapDevice) MirrorWrites() uint64 { return d.mirror.Writes() }

// MarkReclaimed switches the device to its degraded mode: the remote memory
// has been taken back (US_reclaim), so swapped pages are served from the
// local mirror until the device is released. The paper's design keeps the VM
// running — slower, but correct.
func (d *RemoteSwapDevice) MarkReclaimed() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reclaimed = true
}

// Reclaimed reports whether the device is running on its local mirror.
func (d *RemoteSwapDevice) Reclaimed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reclaimed
}

// Release returns the device's remote buffers to the rack.
func (d *RemoteSwapDevice) Release() error {
	d.mu.Lock()
	buffers := d.buffers
	d.buffers = nil
	d.reclaimed = true
	d.mu.Unlock()
	if len(buffers) == 0 {
		return nil
	}
	return d.host.Agent.ReleaseBuffers(buffers)
}
