package core

import (
	"errors"
	"testing"

	"repro/internal/acpi"
	"repro/internal/pagepolicy"
	"repro/internal/vm"
	"repro/internal/workload"
)

// testRack builds a small rack with 1 GiB servers and 16 MiB buffers so the
// integration tests stay fast.
func testRack(t *testing.T, servers int) *Rack {
	t.Helper()
	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = 1 << 30
	r, err := NewRack(Config{
		Servers:           servers,
		Board:             board,
		BufferSize:        16 << 20,
		HostReservedBytes: 128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRackValidation(t *testing.T) {
	if _, err := NewRack(Config{Servers: 0}); err == nil {
		t.Error("zero servers should fail")
	}
	bad := acpi.DefaultBoardSpec()
	bad.MemoryBytes = 0
	if _, err := NewRack(Config{Servers: 2, Board: bad}); err == nil {
		t.Error("invalid board should fail")
	}
	r := testRack(t, 3)
	if len(r.Servers()) != 3 {
		t.Errorf("servers = %v", r.Servers())
	}
	if _, err := r.Server("server-00"); err != nil {
		t.Error(err)
	}
	if _, err := r.Server("missing"); !errors.Is(err, ErrUnknownServer) {
		t.Error("unknown server lookup should fail")
	}
}

func TestPushToZombieAndWake(t *testing.T) {
	r := testRack(t, 3)
	if err := r.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	s, _ := r.Server("server-02")
	if s.State() != acpi.Sz {
		t.Fatalf("state = %v, want Sz", s.State())
	}
	if s.Role() != RoleZombie {
		t.Errorf("role = %v", s.Role())
	}
	if !s.Platform.MemoryRemotelyAccessible() {
		t.Error("zombie memory must stay remotely accessible")
	}
	if r.FreeRemoteMemory() == 0 {
		t.Error("zombie should have delegated memory")
	}
	if lru, err := r.LRUZombie(); err != nil || lru != "server-02" {
		t.Errorf("LRU zombie = %q (%v)", lru, err)
	}

	if err := r.Wake("server-02"); err != nil {
		t.Fatal(err)
	}
	if s.State() != acpi.S0 {
		t.Errorf("state after wake = %v", s.State())
	}
	if r.FreeRemoteMemory() != 0 {
		t.Error("woken server should have reclaimed its memory")
	}
	if _, err := r.LRUZombie(); err == nil {
		t.Error("no zombie should remain")
	}
}

func TestSuspendToS3IsNotServing(t *testing.T) {
	r := testRack(t, 2)
	if err := r.Suspend("server-01", acpi.S3); err != nil {
		t.Fatal(err)
	}
	s, _ := r.Server("server-01")
	if s.State() != acpi.S3 {
		t.Fatalf("state = %v", s.State())
	}
	if s.Device.Serving() {
		t.Error("an S3 server must not serve remote memory")
	}
	if r.FreeRemoteMemory() != 0 {
		t.Error("an S3 server delegates nothing")
	}
	// Suspend(..., Sz) routes through PushToZombie.
	if err := r.Wake("server-01"); err != nil {
		t.Fatal(err)
	}
	if err := r.Suspend("server-01", acpi.Sz); err != nil {
		t.Fatal(err)
	}
	if s.State() != acpi.Sz {
		t.Errorf("state = %v, want Sz", s.State())
	}
}

func TestSuspendUnknownServer(t *testing.T) {
	r := testRack(t, 1)
	if err := r.PushToZombie("nope"); !errors.Is(err, ErrUnknownServer) {
		t.Error("unknown server should fail")
	}
	if err := r.Suspend("nope", acpi.S3); !errors.Is(err, ErrUnknownServer) {
		t.Error("unknown server should fail")
	}
	if err := r.Wake("nope"); !errors.Is(err, ErrUnknownServer) {
		t.Error("unknown server should fail")
	}
}

func TestCreateVMFullyLocal(t *testing.T) {
	r := testRack(t, 2)
	spec := vm.New("small", 256<<20, 128<<20)
	g, err := r.CreateVM(spec, CreateVMOptions{SimPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if g.RemoteBytes != 0 {
		t.Errorf("small VM should be fully local, remote=%d", g.RemoteBytes)
	}
	if g.Paging == nil || g.Paging.Pages() == 0 {
		t.Error("paging context missing")
	}
	if len(r.VMs()) != 1 {
		t.Error("rack should list the VM")
	}
	if _, err := r.CreateVM(spec, CreateVMOptions{}); err == nil {
		t.Error("duplicate VM should fail")
	}
	if err := r.DestroyVM("small"); err != nil {
		t.Fatal(err)
	}
	if err := r.DestroyVM("small"); !errors.Is(err, ErrUnknownVM) {
		t.Error("destroying a missing VM should fail")
	}
}

func TestCreateVMWithRemoteMemory(t *testing.T) {
	r := testRack(t, 3)
	// Push one server to Sz so remote memory exists.
	if err := r.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	// A VM bigger than a single host's free memory (1 GiB - 128 MiB host
	// reserve): 1.5 GiB needs ~0.6 GiB of remote memory.
	spec := vm.New("big", 3<<29, 1<<30)
	g, err := r.CreateVM(spec, CreateVMOptions{SimPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if g.RemoteBytes == 0 {
		t.Fatal("the big VM should use remote memory")
	}
	if len(g.buffers) == 0 {
		t.Fatal("remote buffers should be allocated")
	}
	host, _ := r.Server(g.Host)
	if host.Role() != RoleUser {
		t.Errorf("host role = %v, want user", host.Role())
	}

	// Run a scan-heavy workload on it: pages must round-trip through the
	// zombie's memory over the RDMA fabric.
	stats, err := r.RunWorkload("big", workload.SparkSQL, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Demotions == 0 || stats.Promotions == 0 {
		t.Errorf("expected paging to remote memory, got %+v", stats)
	}
	if r.Fabric().Stats().Writes == 0 || r.Fabric().Stats().Reads == 0 {
		t.Error("the RDMA fabric should have carried page traffic")
	}

	// Destroying the VM returns the remote memory.
	freeBefore := r.FreeRemoteMemory()
	if err := r.DestroyVM("big"); err != nil {
		t.Fatal(err)
	}
	if r.FreeRemoteMemory() <= freeBefore {
		t.Error("destroying the VM should free remote memory")
	}
}

func TestCreateVMRejectsWhenNoCapacity(t *testing.T) {
	r := testRack(t, 1)
	// One 1 GiB server, no zombie: a 4 GiB VM cannot be placed.
	spec := vm.New("huge", 4<<30, 2<<30)
	if _, err := r.CreateVM(spec, CreateVMOptions{}); err == nil {
		t.Fatal("placement should fail without remote memory")
	}
	if _, err := r.CreateVM(vm.VM{}, CreateVMOptions{}); err == nil {
		t.Fatal("invalid VM spec should fail")
	}
}

func TestCannotZombifyServerWithVMs(t *testing.T) {
	r := testRack(t, 2)
	if _, err := r.CreateVM(vm.New("v", 256<<20, 128<<20), CreateVMOptions{SimPages: 128}); err != nil {
		t.Fatal(err)
	}
	g, _ := r.VM("v")
	if err := r.PushToZombie(g.Host); err == nil {
		t.Fatal("a server hosting VMs must not enter Sz")
	}
	if err := r.Suspend(g.Host, acpi.S3); err == nil {
		t.Fatal("a server hosting VMs must not suspend")
	}
}

func TestEnergyAccounting(t *testing.T) {
	r := testRack(t, 3)
	if err := r.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	r.AdvanceClock(3600 * 1e9) // one hour
	reports := r.EnergyReportAll()
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	var zombieJ, activeJ float64
	for _, rep := range reports {
		if rep.Joules <= 0 {
			t.Errorf("%s consumed no energy", rep.Server)
		}
		if rep.Server == "server-02" {
			zombieJ = rep.Joules
		} else {
			activeJ = rep.Joules
		}
	}
	if zombieJ >= activeJ/2 {
		t.Errorf("zombie energy (%.0f J) should be far below an idle active server (%.0f J)", zombieJ, activeJ)
	}
	if r.TotalEnergyJoules() <= 0 {
		t.Error("total energy should be positive")
	}
	if r.Now() != 3600*1e9 {
		t.Errorf("clock = %d", r.Now())
	}
	r.AdvanceClock(-5) // ignored
	if r.Now() != 3600*1e9 {
		t.Error("negative clock advance should be ignored")
	}
}

func TestRunWorkloadUnknownVM(t *testing.T) {
	r := testRack(t, 1)
	if _, err := r.RunWorkload("ghost", workload.MicroBench, 1, 1); !errors.Is(err, ErrUnknownVM) {
		t.Error("unknown VM should fail")
	}
}

func TestCreateVMWithExplicitPolicy(t *testing.T) {
	r := testRack(t, 2)
	if err := r.PushToZombie("server-01"); err != nil {
		t.Fatal(err)
	}
	spec := vm.New("pol", 1<<30, 512<<20)
	g, err := r.CreateVM(spec, CreateVMOptions{
		Policy:   pagepolicy.NewFIFO(pagepolicy.DefaultCost()),
		SimPages: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Paging == nil {
		t.Fatal("paging context missing")
	}
}

func TestSecondaryControllerMirrorsRackOperations(t *testing.T) {
	r := testRack(t, 2)
	if err := r.PushToZombie("server-01"); err != nil {
		t.Fatal(err)
	}
	if r.Secondary().Operations() == 0 {
		t.Error("the secondary controller should mirror operations")
	}
	r.AdvanceClock(1e9)
	if r.Secondary().Promoted() {
		t.Error("the secondary must not promote while the rack heartbeats")
	}
}
