package pagepolicy

import (
	"testing"
	"testing/quick"
)

func allPolicies() []Policy {
	c := DefaultCost()
	return []Policy{NewFIFO(c), NewClock(c), NewMixed(c, DefaultMixedWindow)}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, DefaultCost())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy name = %q, want %q", p.Name(), name)
		}
	}
	if _, err := New("lru", DefaultCost()); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestEvictEmpty(t *testing.T) {
	for _, p := range allPolicies() {
		if _, _, ok := p.Evict(); ok {
			t.Errorf("%s: eviction from empty policy should fail", p.Name())
		}
		if p.Evictions() != 0 {
			t.Errorf("%s: failed eviction must not count", p.Name())
		}
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	f := NewFIFO(DefaultCost())
	f.Fault(1)
	f.Fault(2)
	f.Fault(3)
	f.Access(1) // access does not save a page under FIFO
	v, cycles, ok := f.Evict()
	if !ok || v != 1 {
		t.Fatalf("FIFO evicted %d, want 1", v)
	}
	if cycles == 0 {
		t.Error("eviction must cost cycles")
	}
	v, _, _ = f.Evict()
	if v != 2 {
		t.Errorf("second eviction = %d, want 2", v)
	}
	if f.Len() != 1 {
		t.Errorf("len = %d, want 1", f.Len())
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	c := NewClock(DefaultCost())
	c.Fault(1)
	c.Fault(2)
	c.Fault(3)
	c.Access(1) // page 1 gets a second chance
	v, _, ok := c.Evict()
	if !ok || v != 2 {
		t.Fatalf("Clock evicted %d, want 2 (page 1 was accessed)", v)
	}
	// The hand continues from where it stopped: page 3 is next; page 1 stays
	// protected until the hand wraps around.
	v, _, _ = c.Evict()
	if v != 3 {
		t.Errorf("second eviction = %d, want 3", v)
	}
	v, _, _ = c.Evict()
	if v != 1 {
		t.Errorf("third eviction = %d, want 1 (bit was cleared on the first pass)", v)
	}
}

func TestClockAllAccessedWrapsToFront(t *testing.T) {
	c := NewClock(DefaultCost())
	for i := PageID(1); i <= 4; i++ {
		c.Fault(i)
		c.Access(i)
	}
	v, cycles, ok := c.Evict()
	if !ok || v != 1 {
		t.Fatalf("Clock with all bits set evicted %d, want 1", v)
	}
	// The full scan is expensive: at least one iteration per resident page.
	min := DefaultCost().BaseCycles + 4*(DefaultCost().IterationCycles+DefaultCost().AccessedBitCycles)
	if cycles < min {
		t.Errorf("full-scan cycles = %d, want >= %d", cycles, min)
	}
}

func TestMixedWindowThenFIFO(t *testing.T) {
	m := NewMixed(DefaultCost(), 2)
	if m.Window() != 2 {
		t.Fatalf("window = %d", m.Window())
	}
	for i := PageID(1); i <= 5; i++ {
		m.Fault(i)
	}
	// Accessing the first two pages exhausts the clock window, so Mixed falls
	// back to FIFO over the rest of the list and evicts the oldest page
	// beyond the window (page 3).
	m.Access(1)
	m.Access(2)
	v, _, ok := m.Evict()
	if !ok || v != 3 {
		t.Fatalf("Mixed evicted %d, want 3 (FIFO over the rest of the list)", v)
	}
	// With a clear bit inside the window, Mixed behaves like Clock.
	m2 := NewMixed(DefaultCost(), 3)
	m2.Fault(10)
	m2.Fault(11)
	m2.Access(10)
	v, _, _ = m2.Evict()
	if v != 11 {
		t.Errorf("Mixed evicted %d, want 11 (first clear bit in window)", v)
	}
}

func TestMixedDefaultWindow(t *testing.T) {
	m := NewMixed(DefaultCost(), 0)
	if m.Window() != DefaultMixedWindow {
		t.Errorf("window = %d, want default %d", m.Window(), DefaultMixedWindow)
	}
}

func TestMixedCostBounded(t *testing.T) {
	// The paper's motivation for Mixed: its per-fault cost is bounded by the
	// window, while Clock may scan the whole list. Fill both with N accessed
	// pages and compare one eviction's cycle cost.
	const n = 1000
	cost := DefaultCost()
	clock := NewClock(cost)
	mixed := NewMixed(cost, DefaultMixedWindow)
	for i := PageID(0); i < n; i++ {
		clock.Fault(i)
		clock.Access(i)
		mixed.Fault(i)
		mixed.Access(i)
	}
	_, clockCycles, _ := clock.Evict()
	_, mixedCycles, _ := mixed.Evict()
	if mixedCycles*10 > clockCycles {
		t.Errorf("mixed eviction (%d cycles) should be far cheaper than a full clock scan (%d cycles)",
			mixedCycles, clockCycles)
	}
}

func TestRefaultKeepsOrderAndRefreshesBit(t *testing.T) {
	for _, p := range allPolicies() {
		p.Fault(1)
		p.Fault(2)
		p.Fault(1) // refault: must not duplicate the entry
		if p.Len() != 2 {
			t.Errorf("%s: len after refault = %d, want 2", p.Name(), p.Len())
		}
	}
}

func TestRemove(t *testing.T) {
	for _, p := range allPolicies() {
		p.Fault(1)
		p.Fault(2)
		p.Remove(1)
		p.Remove(99) // unknown page: no-op
		if p.Len() != 1 {
			t.Errorf("%s: len after remove = %d, want 1", p.Name(), p.Len())
		}
		v, _, ok := p.Evict()
		if !ok || v != 2 {
			t.Errorf("%s: evicted %d, want 2", p.Name(), v)
		}
		if p.Evictions() != 1 {
			t.Errorf("%s: evictions = %d, want 1", p.Name(), p.Evictions())
		}
	}
}

func TestTotalCyclesAccumulate(t *testing.T) {
	f := NewFIFO(DefaultCost())
	f.Fault(1)
	f.Fault(2)
	f.Evict()
	first := f.TotalCycles()
	f.Evict()
	if f.TotalCycles() <= first {
		t.Error("cycles should accumulate across evictions")
	}
}

// Property: evictions never return a page that is not resident, never return
// the same page twice without an intervening fault, and Len decreases by one
// per successful eviction.
func TestPropertyEvictionConsistency(t *testing.T) {
	prop := func(pages []uint16, policyIdx uint8) bool {
		names := Names()
		p, _ := New(names[int(policyIdx)%len(names)], DefaultCost())
		resident := make(map[PageID]bool)
		for _, raw := range pages {
			id := PageID(raw % 64)
			p.Fault(id)
			resident[id] = true
		}
		for {
			before := p.Len()
			if before != len(resident) {
				return false
			}
			v, _, ok := p.Evict()
			if !ok {
				return len(resident) == 0
			}
			if !resident[v] {
				return false
			}
			delete(resident, v)
			if p.Len() != before-1 {
				return false
			}
		}
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
