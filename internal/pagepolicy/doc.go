// Package pagepolicy implements the page replacement policies compared in the
// paper's Section 6.2 (Figure 8): FIFO, Clock and Mixed.
//
// The policies decide which local page frame to demote to remote memory when
// local memory becomes scarce. Each policy also accounts the CPU cycles it
// spends inside the page fault handler (list iteration, accessed-bit
// management), because that cost is one of the three quantities Figure 8
// reports.
package pagepolicy
