package pagepolicy

import (
	"container/list"
	"fmt"
)

// PageID identifies a guest page tracked by a policy.
type PageID uint64

// Cost models the per-operation CPU cost of a policy, in cycles.
type Cost struct {
	// IterationCycles is the cost of examining one list element.
	IterationCycles uint64
	// AccessedBitCycles is the cost of reading or clearing one accessed bit.
	AccessedBitCycles uint64
	// BaseCycles is the fixed cost of invoking the policy.
	BaseCycles uint64
}

// DefaultCost returns the cost parameters used throughout the repository
// (representative x86 magnitudes: a dependent memory read per list element, a
// page-table walk per accessed-bit probe).
func DefaultCost() Cost {
	return Cost{IterationCycles: 12, AccessedBitCycles: 40, BaseCycles: 120}
}

// Policy selects victim pages for demotion to remote memory.
type Policy interface {
	// Name returns the policy name ("fifo", "clock", "mixed").
	Name() string
	// Fault records that the page generated a page fault and is now resident
	// in local memory (appended to the policy's bookkeeping).
	Fault(p PageID)
	// Access records an access to a resident page (sets its accessed bit).
	Access(p PageID)
	// Evict chooses a victim among resident pages and removes it from the
	// bookkeeping. It returns the victim and the number of CPU cycles the
	// selection consumed. ok is false when no page is resident.
	Evict() (victim PageID, cycles uint64, ok bool)
	// Remove forgets a resident page without counting it as an eviction
	// (used when a VM releases memory or migrates).
	Remove(p PageID)
	// Len returns the number of resident pages tracked.
	Len() int
	// TotalCycles returns the cumulative cycles consumed by Evict calls.
	TotalCycles() uint64
	// Evictions returns the number of successful Evict calls.
	Evictions() uint64
}

// entry is one element of the FIFO list shared by all three policies.
type entry struct {
	page     PageID
	accessed bool
}

// base carries the FIFO list machinery shared by the policies.
type base struct {
	cost    Cost
	order   *list.List // front = oldest fault
	index   map[PageID]*list.Element
	cycles  uint64
	evicted uint64
}

func newBase(cost Cost) base {
	return base{cost: cost, order: list.New(), index: make(map[PageID]*list.Element)}
}

func (b *base) Fault(p PageID) {
	if el, ok := b.index[p]; ok {
		// Refaulting an already-tracked page refreshes its accessed bit only;
		// its position in the FIFO list is defined by its oldest fault.
		el.Value.(*entry).accessed = true
		return
	}
	b.index[p] = b.order.PushBack(&entry{page: p})
}

func (b *base) Access(p PageID) {
	if el, ok := b.index[p]; ok {
		el.Value.(*entry).accessed = true
	}
}

func (b *base) Remove(p PageID) {
	if el, ok := b.index[p]; ok {
		b.order.Remove(el)
		delete(b.index, p)
	}
}

func (b *base) Len() int { return b.order.Len() }

func (b *base) TotalCycles() uint64 { return b.cycles }

func (b *base) Evictions() uint64 { return b.evicted }

func (b *base) removeElement(el *list.Element) PageID {
	e := el.Value.(*entry)
	b.order.Remove(el)
	delete(b.index, e.page)
	return e.page
}

// FIFO evicts the page with the oldest recorded fault.
type FIFO struct {
	base
}

// NewFIFO returns a FIFO policy with the given cost parameters.
func NewFIFO(cost Cost) *FIFO { return &FIFO{base: newBase(cost)} }

// Name implements Policy.
func (f *FIFO) Name() string { return "fifo" }

// Evict implements Policy: the victim is the front of the FIFO list.
func (f *FIFO) Evict() (PageID, uint64, bool) {
	cycles := f.cost.BaseCycles
	front := f.order.Front()
	if front == nil {
		f.cycles += cycles
		return 0, cycles, false
	}
	cycles += f.cost.IterationCycles
	victim := f.removeElement(front)
	f.cycles += cycles
	f.evicted++
	return victim, cycles, true
}

// ClockClearPeriod is the number of evictions between two runs of the
// accessed-bit clearing daemon ("the accessed bit of all pages is
// periodically cleared" in the paper's Clock description). Its cost is
// charged to the Clock policy; Mixed bounds that management cost to its
// window, which is the paper's motivation for Mixed.
const ClockClearPeriod = 8

// Clock is the second-chance policy: a hand iterates circularly over the
// FIFO list, clearing accessed bits as it passes and evicting the first page
// whose bit is already clear. A page therefore gets a full revolution of the
// hand to prove it is still in use, which protects hot pages; the price is an
// unbounded scan when many consecutive pages have their bits set, plus the
// periodic accessed-bit management over every resident page — the costs the
// paper's Mixed policy was designed to curb.
type Clock struct {
	base
	hand *list.Element
}

// NewClock returns a Clock policy with the given cost parameters.
func NewClock(cost Cost) *Clock { return &Clock{base: newBase(cost)} }

// Name implements Policy.
func (c *Clock) Name() string { return "clock" }

// Remove implements Policy, keeping the hand valid when its element goes.
func (c *Clock) Remove(p PageID) {
	if el, ok := c.index[p]; ok && el == c.hand {
		c.hand = c.advance(c.hand)
	}
	c.base.Remove(p)
}

// advance moves the hand one step, wrapping to the front.
func (c *Clock) advance(el *list.Element) *list.Element {
	if el == nil {
		return c.order.Front()
	}
	next := el.Next()
	if next == nil {
		next = c.order.Front()
	}
	return next
}

// Evict implements Policy.
func (c *Clock) Evict() (PageID, uint64, bool) {
	cycles := c.cost.BaseCycles
	n := c.order.Len()
	if n == 0 {
		c.cycles += cycles
		return 0, cycles, false
	}
	// Amortized cost of the periodic accessed-bit clearing daemon: every
	// ClockClearPeriod evictions it touches the bit of every resident page.
	cycles += uint64(n) * c.cost.AccessedBitCycles / ClockClearPeriod
	if c.hand == nil {
		c.hand = c.order.Front()
	}
	// At most two revolutions: the first may clear every bit, the second is
	// then guaranteed to find a victim.
	for i := 0; i < 2*n; i++ {
		cycles += c.cost.IterationCycles + c.cost.AccessedBitCycles
		e := c.hand.Value.(*entry)
		if !e.accessed {
			victimEl := c.hand
			c.hand = c.advance(c.hand)
			if c.hand == victimEl {
				c.hand = nil
			}
			victim := c.removeElement(victimEl)
			c.cycles += cycles
			c.evicted++
			return victim, cycles, true
		}
		e.accessed = false
		c.hand = c.advance(c.hand)
	}
	// Unreachable: after one revolution every bit is clear.
	victim := c.removeElement(c.order.Front())
	c.cycles += cycles
	c.evicted++
	return victim, cycles, true
}

// Mixed applies the Clock policy to a bounded window of the list (advancing
// the same kind of hand, but at most Window steps per eviction); if every
// page in the window had its accessed bit set, it falls back to FIFO and
// evicts the oldest page beyond the window. This bounds both the iteration
// cost and the accessed-bit management of Clock while still avoiding the
// eviction of a page that was recently used, which is why the paper finds it
// the best of the three.
type Mixed struct {
	base
	window int
	hand   *list.Element
}

// DefaultMixedWindow is the paper's example window (x = 5).
const DefaultMixedWindow = 5

// NewMixed returns a Mixed policy with the given clock window.
func NewMixed(cost Cost, window int) *Mixed {
	if window <= 0 {
		window = DefaultMixedWindow
	}
	return &Mixed{base: newBase(cost), window: window}
}

// Name implements Policy.
func (m *Mixed) Name() string { return "mixed" }

// Window returns the clock window size.
func (m *Mixed) Window() int { return m.window }

// Remove implements Policy, keeping the hand valid when its element goes.
func (m *Mixed) Remove(p PageID) {
	if el, ok := m.index[p]; ok && el == m.hand {
		m.hand = m.advance(m.hand)
	}
	m.base.Remove(p)
}

// advance moves the hand one step, wrapping to the front.
func (m *Mixed) advance(el *list.Element) *list.Element {
	if el == nil {
		return m.order.Front()
	}
	next := el.Next()
	if next == nil {
		next = m.order.Front()
	}
	return next
}

// Evict implements Policy.
func (m *Mixed) Evict() (PageID, uint64, bool) {
	cycles := m.cost.BaseCycles
	n := m.order.Len()
	if n == 0 {
		m.cycles += cycles
		return 0, cycles, false
	}
	if m.hand == nil {
		m.hand = m.order.Front()
	}
	steps := m.window
	if steps > n {
		steps = n
	}
	for i := 0; i < steps; i++ {
		cycles += m.cost.IterationCycles + m.cost.AccessedBitCycles
		e := m.hand.Value.(*entry)
		if !e.accessed {
			victimEl := m.hand
			m.hand = m.advance(m.hand)
			if m.hand == victimEl {
				m.hand = nil
			}
			victim := m.removeElement(victimEl)
			m.cycles += cycles
			m.evicted++
			return victim, cycles, true
		}
		e.accessed = false
		m.hand = m.advance(m.hand)
	}
	// Window exhausted: fall back to FIFO over the rest of the list — evict
	// the oldest page that the clock window did not just examine (i.e. the
	// current hand position).
	cycles += m.cost.IterationCycles
	victimEl := m.hand
	if victimEl == nil {
		victimEl = m.order.Front()
	}
	m.hand = m.advance(victimEl)
	if m.hand == victimEl {
		m.hand = nil
	}
	victim := m.removeElement(victimEl)
	m.cycles += cycles
	m.evicted++
	return victim, cycles, true
}

// New constructs a policy by name: "fifo", "clock" or "mixed".
func New(name string, cost Cost) (Policy, error) {
	switch name {
	case "fifo":
		return NewFIFO(cost), nil
	case "clock":
		return NewClock(cost), nil
	case "mixed":
		return NewMixed(cost, DefaultMixedWindow), nil
	default:
		return nil, fmt.Errorf("pagepolicy: unknown policy %q", name)
	}
}

// Names lists the available policy names in the paper's order.
func Names() []string { return []string{"fifo", "clock", "mixed"} }
