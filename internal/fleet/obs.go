package fleet

import (
	"repro/internal/obs"
)

// fleetObs is the resolved observability handle: the trace ring plus every
// counter the fleet touches, looked up once at SetObs time so the batch
// paths never hit the registry. A nil handle (the default) disables
// everything; every emission site is guarded by the nil check, so the
// disabled batch paths allocate nothing extra (the variadic trace fields
// would otherwise heap-allocate at the call site even against a nil ring).
type fleetObs struct {
	trace *obs.Trace

	placeBatches *obs.Counter
	placeVMs     *obs.Counter
	placeFailed  *obs.Counter

	workloadBatches *obs.Counter
	workloadOps     *obs.Counter
	workloadErrors  *obs.Counter

	crashes      *obs.Counter
	revives      *obs.Counter
	failovers    *obs.Counter
	wakeFailures *obs.Counter
}

// SetObs attaches (or, with nil, detaches) an observability bundle. Batch
// events — placement batch and per-rack shard outcomes, workload batches,
// chaos faults and repairs — are emitted from the coordinating goroutine
// after the parallel shards complete, in rack-index order, so the trace is
// deterministic for any Workers value, exactly like the results themselves.
func (f *Fleet) SetObs(o *obs.Obs) {
	if o == nil {
		f.obs.Store(nil)
		return
	}
	reg := o.Metrics
	f.obs.Store(&fleetObs{
		trace:           o.Trace,
		placeBatches:    reg.Counter("fleet_place_batches_total", "placement batches executed"),
		placeVMs:        reg.Counter("fleet_place_vms_total", "VMs successfully placed"),
		placeFailed:     reg.Counter("fleet_place_failed_total", "VM placements that failed"),
		workloadBatches: reg.Counter("fleet_workload_batches_total", "workload batches executed"),
		workloadOps:     reg.Counter("fleet_workload_requests_total", "workload replay requests"),
		workloadErrors:  reg.Counter("fleet_workload_errors_total", "workload replays that failed"),
		crashes:         reg.Counter("fleet_chaos_crashes_total", "servers crashed by the fault surface"),
		revives:         reg.Counter("fleet_chaos_revives_total", "crashed servers revived"),
		failovers:       reg.Counter("fleet_chaos_failovers_total", "controller losses failed over"),
		wakeFailures:    reg.Counter("fleet_chaos_wake_failures_total", "wake attempts failed by the injector"),
	})
}

// observePlacement emits the batch and per-rack shard events after a
// placement batch completes. Runs on the coordinator with no locks held.
func (f *Fleet) observePlacement(specs int, plans []rackPlan, results []Placement) {
	ob := f.obs.Load()
	if ob == nil {
		return
	}
	placed, failed := 0, 0
	for i := range results {
		if results[i].Err == "" {
			placed++
		} else {
			failed++
		}
	}
	ob.placeBatches.Inc()
	ob.placeVMs.Add(uint64(placed))
	ob.placeFailed.Add(uint64(failed))
	ob.trace.Emit("fleet", "place.batch",
		obs.F("vms", int64(specs)), obs.F("placed", int64(placed)), obs.F("failed", int64(failed)))
	for ri := range plans {
		if len(plans[ri].specIdx) == 0 {
			continue
		}
		ok := 0
		for _, si := range plans[ri].specIdx {
			if results[si].Err == "" {
				ok++
			}
		}
		ob.trace.Emit("fleet", "place.shard",
			obs.F("rack", int64(ri)), obs.F("assigned", int64(len(plans[ri].specIdx))), obs.F("placed", int64(ok)))
	}
}

// observeWorkloads emits the batch and per-rack shard events after a
// workload batch completes.
func (f *Fleet) observeWorkloads(byRack [][]int, results []WorkloadResult) {
	ob := f.obs.Load()
	if ob == nil {
		return
	}
	errs := 0
	for i := range results {
		if results[i].Err != "" {
			errs++
		}
	}
	ob.workloadBatches.Inc()
	ob.workloadOps.Add(uint64(len(results)))
	ob.workloadErrors.Add(uint64(errs))
	ob.trace.Emit("fleet", "workloads.batch",
		obs.F("requests", int64(len(results))), obs.F("errors", int64(errs)))
	for ri := range byRack {
		if len(byRack[ri]) == 0 {
			continue
		}
		ob.trace.Emit("fleet", "workloads.shard",
			obs.F("rack", int64(ri)), obs.F("requests", int64(len(byRack[ri]))))
	}
}
