package fleet

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/memctl"
)

// poolEntry is one pre-reserved cross-rack buffer waiting in a borrower
// rack's pool.
type poolEntry struct {
	lender int
	buf    *memctl.RemoteBuffer
}

// rackOverflow implements core.RemoteOverflow for one borrower rack. Its
// pool is funded sequentially before a batch executes (fundBorrowPools) and
// consumed only by the rack's own shard, so no other shard ever touches it:
// the overflow's own mutex merely makes the bookkeeping safe for the
// sequential single-VM path and for inspection.
type rackOverflow struct {
	fleet *Fleet
	rack  int

	mu        sync.Mutex
	pool      []poolEntry
	poolBytes int64
	ledger    []Borrow
}

// fund appends pre-reserved buffers to the pool in consumption order.
func (o *rackOverflow) fund(entries []poolEntry) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range entries {
		o.pool = append(o.pool, e)
		o.poolBytes += e.buf.Size
	}
}

// AvailableBytes implements core.RemoteOverflow.
func (o *rackOverflow) AvailableBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.poolBytes
}

// AllocExt implements core.RemoteOverflow: hand out pooled buffers, oldest
// first, until memSize is covered, and record the grant per lender in the
// rack's borrow ledger.
func (o *rackOverflow) AllocExt(vmID, host string, memSize int64) ([]*memctl.RemoteBuffer, string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.poolBytes < memSize {
		return nil, "", fmt.Errorf("fleet: cross-rack pool of %s holds %d bytes, VM %s needs %d",
			o.fleet.names[o.rack], o.poolBytes, vmID, memSize)
	}
	var handles []*memctl.RemoteBuffer
	var covered int64
	perLender := make(map[int]*Borrow)
	var lenderOrder []int
	for covered < memSize {
		e := o.pool[0]
		o.pool = o.pool[1:]
		o.poolBytes -= e.buf.Size
		covered += e.buf.Size
		handles = append(handles, e.buf)
		b, ok := perLender[e.lender]
		if !ok {
			b = &Borrow{VM: vmID, Borrower: o.fleet.names[o.rack], Lender: o.fleet.names[e.lender]}
			perLender[e.lender] = b
			lenderOrder = append(lenderOrder, e.lender)
		}
		b.Bytes += e.buf.Size
		b.Buffers++
	}
	labels := make([]string, 0, len(lenderOrder))
	for _, j := range lenderOrder {
		o.ledger = append(o.ledger, *perLender[j])
		labels = append(labels, o.fleet.names[j])
	}
	return handles, strings.Join(labels, "+"), nil
}

// Release implements core.RemoteOverflow: borrowed buffers go straight back
// to their lending controllers (grouped by owning gateway agent).
func (o *rackOverflow) Release(vmID string, bufs []*memctl.RemoteBuffer) error {
	return memctl.ReleaseHandles(bufs)
}

// drain returns every unconsumed pooled buffer to its lender.
func (o *rackOverflow) drain() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.pool) == 0 {
		return nil
	}
	handles := make([]*memctl.RemoteBuffer, len(o.pool))
	for i, e := range o.pool {
		handles[i] = e.buf
	}
	o.pool = nil
	o.poolBytes = 0
	return memctl.ReleaseHandles(handles)
}

// takeLedger hands the accumulated borrow records to the fleet and resets
// the rack-local ledger.
func (o *rackOverflow) takeLedger() []Borrow {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := o.ledger
	o.ledger = nil
	return out
}
