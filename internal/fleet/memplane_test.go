package fleet

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memctl"
	"repro/internal/memplane"
	"repro/internal/vm"
	"repro/internal/workload"
)

// dataFleet stands up a 1-rack fleet with two zombie lenders and one
// memory-hungry VM, returning the fleet and the VM's ID.
func dataFleet(t *testing.T) (*Fleet, string) {
	t.Helper()
	f, err := New(testConfig(1, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, server := range f.Rack(0).Servers()[1:] {
		if err := f.PushToZombie(0, server); err != nil {
			t.Fatal(err)
		}
	}
	spec := vm.New("vm-data", 1792<<20, 1536<<20)
	if _, err := f.PlaceVMs([]vm.VM{spec}, core.CreateVMOptions{}); err != nil {
		t.Fatal(err)
	}
	return f, spec.ID
}

// TestFleetDataTraffic proves RunWorkloads' DataBytes mode pushes real bytes
// through the data plane: the request's access stream lands as remote traffic
// in the plane's counters, and a direct write/read round-trip through the
// fleet handle returns the written bytes.
func TestFleetDataTraffic(t *testing.T) {
	f, vmID := dataFleet(t)
	guest, err := f.Rack(0).VM(vmID)
	if err != nil {
		t.Fatal(err)
	}
	if guest.Paging.LocalFrames() >= guest.Paging.Pages() {
		t.Fatal("test VM has no remote pages; enlarge the spec")
	}
	results := f.RunWorkloads([]WorkloadRequest{{
		VM:   vmID,
		Kind: workload.MicroBench,
		// Ten full passes over the span: enough distinct pages to overflow
		// the local arena (coverage ~1-e^-10 of the span) without the replay
		// dominating the suite's wall-clock under -race.
		Iterations: 10,
		Seed:       7,
		// Span the whole paging scale so the stream reaches past the local
		// frames into remote territory.
		DataBytes: int64(guest.Paging.Pages()) * 4096,
	}})
	if results[0].Err != "" {
		t.Fatalf("data replay failed: %s", results[0].Err)
	}
	data := results[0].Data
	if data.Writes == 0 || data.Reads == 0 {
		t.Fatalf("no traffic recorded: %+v", data)
	}
	if data.RemoteOps == 0 || data.RemoteBytesWritten == 0 {
		t.Fatalf("traffic never left the local arena: %+v", data)
	}
	if data.ChargedNs <= 0 {
		t.Fatalf("no charges booked: %+v", data)
	}

	// Direct round-trip through the fleet handle.
	p, err := f.MemplaneOf(vmID)
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("zombie memory serves bytes")
	addr := int64(guest.Paging.Pages()-2) * p.PageSize() // past the local frames
	if _, _, err := p.Write(addr, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(src))
	if _, _, err := p.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("read %q, want %q", got, src)
	}
	// Destroying the VM closes the plane and releases its grants.
	if err := f.DestroyVM(vmID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Write(addr, src); !errors.Is(err, memplane.ErrClosed) {
		t.Fatalf("plane should be closed after DestroyVM, got %v", err)
	}
}

// TestFleetCrashRehomeData drives traffic, crashes a serving zombie, observes
// real timeouts, re-homes the memory and proves the bytes survived.
func TestFleetCrashRehomeData(t *testing.T) {
	f, vmID := dataFleet(t)
	p, err := f.MemplaneOf(vmID)
	if err != nil {
		t.Fatal(err)
	}
	// Fill more distinct pages than the plane has local frames: the overflow
	// forces remote grants, so the tail lands on the zombies.
	guest, err := f.Rack(0).VM(vmID)
	if err != nil {
		t.Fatal(err)
	}
	ps := p.PageSize()
	total := int64(guest.Paging.LocalFrames()) + 100
	if max := int64(guest.Paging.Pages()); total > max {
		t.Fatalf("paging scale too small: %d local frames of %d pages", guest.Paging.LocalFrames(), max)
	}
	buf := make([]byte, ps)
	for pg := int64(0); pg < total; pg++ {
		for i := range buf {
			buf[i] = byte(pg + int64(i)*5)
		}
		if _, _, err := p.Write(pg*ps, buf); err != nil {
			t.Fatalf("write page %d: %v", pg, err)
		}
	}
	// Find a server actually serving pages.
	var victim string
	for _, server := range f.Rack(0).Servers()[1:] {
		if len(p.Table().PagesOn(vmID, memctl.ServerID(server))) > 0 {
			victim = server
			break
		}
	}
	if victim == "" {
		t.Fatal("no zombie serves any page; the plane never went remote")
	}

	// Re-homing an alive server is refused.
	if _, err := f.RehomeServerMemory(0, victim); err == nil || !strings.Contains(err.Error(), "not crashed") {
		t.Fatalf("rehome before crash: got %v", err)
	}
	if err := f.CrashServer(0, victim); err != nil {
		t.Fatal(err)
	}
	// Traffic against the dead host times out for real.
	hurt := p.Table().PagesOn(vmID, memctl.ServerID(victim))[0]
	if _, _, err := p.Read(hurt*ps, buf); !errors.Is(err, memplane.ErrRemoteTimeout) {
		t.Fatalf("read of crashed host: got %v, want ErrRemoteTimeout", err)
	}
	rep, err := f.RehomeServerMemory(0, victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pages == 0 || rep.Bytes != int64(rep.Pages)*ps {
		t.Fatalf("rehome report %+v", rep)
	}
	if got := p.Table().PagesOn(vmID, memctl.ServerID(victim)); len(got) != 0 {
		t.Fatalf("%d pages still on the crashed host", len(got))
	}
	if err := f.ReviveServer(0, victim); err != nil {
		t.Fatal(err)
	}
	// Every page reads back exactly what was written before the crash.
	for pg := int64(0); pg < total; pg++ {
		want := make([]byte, ps)
		for i := range want {
			want[i] = byte(pg + int64(i)*5)
		}
		if _, _, err := p.Read(pg*ps, buf); err != nil {
			t.Fatalf("read page %d after rehome: %v", pg, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("page %d lost its contents across the migration", pg)
		}
	}
}
