package fleet

import (
	"fmt"

	"repro/internal/acpi"
	"repro/internal/core"
	"repro/internal/vm"
)

// Dynamic arrival/departure surface: the batch entry points serve offline
// replay, but an online control plane admits one VM at a time and wants to
// observe the fleet's churn. PlaceVM is the single-arrival convenience and
// VMHooks the observation channel; both reuse the batched machinery so a
// dynamic arrival follows exactly the same partitioning, borrowing and
// admission path as a batch of one.

// VMHooks observes dynamic VM arrivals and departures on a fleet. Hooks are
// called synchronously after the fleet bookkeeping is updated, while the
// batch lock is still held: read-only accessors (RackOf, BorrowLedger,
// FabricStats...) are safe inside a hook, batch entry points (PlaceVMs,
// DestroyVM, RunWorkloads, FailoverRack) are not.
type VMHooks struct {
	// OnArrival fires for every successfully placed VM, batch or single.
	OnArrival func(Placement)
	// OnDeparture fires for every destroyed VM with the rack that hosted it.
	OnDeparture func(vmID, rack string)
}

// SetVMHooks installs the hooks (replacing any previous set).
func (f *Fleet) SetVMHooks(h VMHooks) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hooks = h
}

// PlaceVM places a single VM through the batched placement path — the
// dynamic-arrival entry point of the online control plane. Unlike a batch,
// a placement failure is returned as an error.
func (f *Fleet) PlaceVM(spec vm.VM, opts core.CreateVMOptions) (Placement, error) {
	placements, err := f.PlaceVMs([]vm.VM{spec}, opts)
	if err != nil {
		return Placement{}, err
	}
	p := placements[0]
	if p.Err != "" {
		return p, fmt.Errorf("fleet: placing VM %s: %s", spec.ID, p.Err)
	}
	return p, nil
}

// Suspend moves one rack's server into a conventional sleep state (S3/S4);
// Sz routes through the zombie path. The counterpart of PushToZombie for
// postures that give up the server's memory entirely. Crashed servers are
// refused; serialised against the batch entry points.
func (f *Fleet) Suspend(rack int, server string, state acpi.SleepState) error {
	if err := f.checkRack(rack); err != nil {
		return err
	}
	if err := f.serverFault(rack, server, false); err != nil {
		return err
	}
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	return f.racks[rack].Suspend(server, state)
}
