package fleet

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/memplane"
	"repro/internal/workload"
)

// WorkloadRequest asks the fleet to replay a workload against one VM.
type WorkloadRequest struct {
	VM         string
	Kind       workload.Kind
	Iterations int
	Seed       int64
	// DataBytes, when positive, switches the replay from the simulated paging
	// context to the VM's data plane: the workload's access stream is driven
	// as real page-sized reads and writes through memplane, so the bytes
	// actually traverse the zombie servers' granted buffers. The value sizes
	// the traffic's address span (capped at the VM's paging scale).
	DataBytes int64
}

// WorkloadResult is the outcome of one request, in request order.
type WorkloadResult struct {
	VM   string
	Rack string
	Kind workload.Kind
	// Stats carries the VM's accumulated paging counters after the replay
	// (paging mode only).
	Stats hypervisor.Stats
	// Data carries the VM's accumulated data-plane counters after the replay
	// (DataBytes mode only).
	Data memplane.Stats
	// Err is non-empty when the replay failed; other requests proceed.
	Err string
}

// RunWorkloads replays a batch of workloads across the fleet on the worker
// pool: requests are grouped by hosting rack, each rack shard replays its
// requests in batch order, and the results land in the batch-ordered slice.
// Replays only touch their own VM's paging context and the fabrics backing
// its buffers, so shards are independent and the results are bit-identical
// for any Workers value.
func (f *Fleet) RunWorkloads(reqs []WorkloadRequest) []WorkloadResult {
	f.batchMu.Lock()
	defer f.batchMu.Unlock()

	results := make([]WorkloadResult, len(reqs))
	byRack := make([][]int, len(f.racks))
	// One lock acquisition for the whole routing pass: the per-request work
	// under it is a registry probe and a slice index.
	f.mu.Lock()
	for i, req := range reqs {
		results[i].VM = req.VM
		results[i].Kind = req.Kind
		ri, ok := f.vmRackLocked(req.VM)
		if !ok {
			results[i].Err = fmt.Sprintf("fleet: unknown VM %s", req.VM)
			continue
		}
		results[i].Rack = f.names[ri]
		byRack[ri] = append(byRack[ri], i)
	}
	f.mu.Unlock()

	f.runRackShards(len(f.racks), func(ri int) {
		rack := f.racks[ri]
		for _, i := range byRack[ri] {
			req := reqs[i]
			if req.DataBytes > 0 {
				data, err := runDataTraffic(rack, req)
				results[i].Data = data
				if err != nil {
					results[i].Err = err.Error()
				}
				continue
			}
			stats, err := rack.RunWorkload(req.VM, req.Kind, req.Iterations, req.Seed)
			if err != nil {
				results[i].Err = err.Error()
				continue
			}
			results[i].Stats = stats
		}
	})
	f.observeWorkloads(byRack, results)
	return results
}
