package fleet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/acpi"
	"repro/internal/core"
	"repro/internal/rdma"
	"repro/internal/vm"
	"repro/internal/workload"
)

// testConfig builds a small fleet: 1 GiB servers, 16 MiB buffers, 128 MiB
// host reservation, 8 cores per board (one default VM per host by CPU).
func testConfig(racks, servers, workers int) Config {
	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = 1 << 30
	return Config{
		Racks: racks,
		Rack: core.Config{
			Servers:           servers,
			Board:             board,
			BufferSize:        16 << 20,
			HostReservedBytes: 128 << 20,
		},
		Workers: workers,
	}
}

// buildScenario stands up the canonical test fleet: 4 racks x 4 servers,
// racks 1 and 3 keep one awake host and lend three zombies' memory each,
// racks 0 and 2 start dry. It returns the fleet and a batch of 10 memory-hungry VMs whose
// remote parts exercise home allocation, single-lender borrows and borrows
// that span lenders.
func buildScenario(t testing.TB, workers int) (*Fleet, []vm.VM) {
	t.Helper()
	f, err := New(testConfig(4, 4, workers))
	if err != nil {
		t.Fatal(err)
	}
	for _, rack := range []int{1, 3} {
		for _, server := range f.Rack(rack).Servers()[1:] {
			if err := f.PushToZombie(rack, server); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Alternate two flavours against 896 MiB of free local memory per host:
	// small VMs need 128 MiB of remote memory, large ones sit on the 50%%
	// local-memory rule and need 896 MiB — so the batch exercises home
	// allocations, single-lender borrows and borrows spanning lenders, and
	// the large VMs page hard enough to drive real cross-rack traffic.
	var specs []vm.VM
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			specs = append(specs, vm.New(fmt.Sprintf("vm-%02d", i), 1<<30, 512<<20))
		} else {
			specs = append(specs, vm.New(fmt.Sprintf("vm-%02d", i), 1792<<20, 1536<<20))
		}
	}
	return f, specs
}

type scenarioOutcome struct {
	placements []Placement
	results    []WorkloadResult
	ledger     []Borrow
	energy     []core.EnergyReport
	joules     float64
	fabrics    []rdma.Stats
}

func runScenario(t testing.TB, workers int) scenarioOutcome {
	t.Helper()
	f, specs := buildScenario(t, workers)
	placements, err := f.PlaceVMs(specs, core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []WorkloadRequest
	for i, p := range placements {
		if p.Err != "" {
			continue
		}
		reqs = append(reqs, WorkloadRequest{
			VM:         p.VM,
			Kind:       workload.AllKinds()[i%len(workload.AllKinds())],
			Iterations: 3,
			Seed:       int64(i + 1),
		})
	}
	results := f.RunWorkloads(reqs)
	f.AdvanceClock(3600 * 1e9)
	return scenarioOutcome{
		placements: placements,
		results:    results,
		ledger:     f.BorrowLedger(),
		energy:     f.EnergyReportAll(),
		joules:     f.TotalEnergyJoules(),
		fabrics:    f.FabricStats(),
	}
}

// TestFleetParallelMatchesSequential is the determinism contract of the
// fleet layer: placement decisions, energy accounting, borrow ledgers and
// workload results with Workers=4 are bit-identical to Workers=1.
func TestFleetParallelMatchesSequential(t *testing.T) {
	seq := runScenario(t, 1)
	par := runScenario(t, 4)

	if !reflect.DeepEqual(seq.placements, par.placements) {
		t.Errorf("placements diverge:\nseq: %+v\npar: %+v", seq.placements, par.placements)
	}
	if !reflect.DeepEqual(seq.results, par.results) {
		t.Errorf("workload results diverge:\nseq: %+v\npar: %+v", seq.results, par.results)
	}
	if !reflect.DeepEqual(seq.ledger, par.ledger) {
		t.Errorf("borrow ledgers diverge:\nseq: %+v\npar: %+v", seq.ledger, par.ledger)
	}
	if !reflect.DeepEqual(seq.energy, par.energy) {
		t.Errorf("energy reports diverge:\nseq: %+v\npar: %+v", seq.energy, par.energy)
	}
	if seq.joules != par.joules {
		t.Errorf("total energy diverges: seq %v vs par %v", seq.joules, par.joules)
	}
	if !reflect.DeepEqual(seq.fabrics, par.fabrics) {
		t.Errorf("fabric stats diverge:\nseq: %+v\npar: %+v", seq.fabrics, par.fabrics)
	}
}

// TestFleetScenarioShape pins down what the canonical scenario exercises so
// the determinism test above cannot silently degrade into an all-local run.
func TestFleetScenarioShape(t *testing.T) {
	out := runScenario(t, 2)
	placements, results, ledger := out.placements, out.results, out.ledger
	var borrows, home, multiLender int
	for _, p := range placements {
		if p.Err != "" {
			t.Fatalf("placement %s failed: %s", p.VM, p.Err)
		}
		if p.RemoteBytes == 0 {
			t.Fatalf("VM %s should need remote memory", p.VM)
		}
		if p.BorrowedBytes > 0 {
			borrows++
			if strings.Contains(p.BorrowedFrom, "+") {
				multiLender++
			}
		} else {
			home++
		}
	}
	if borrows == 0 || home == 0 {
		t.Fatalf("scenario should mix home and borrowed remote memory (home=%d borrows=%d)", home, borrows)
	}
	if multiLender == 0 {
		t.Fatal("scenario should include a borrow spanning lenders")
	}
	var interRack uint64
	for _, st := range out.fabrics {
		interRack += st.InterRackOps
	}
	if interRack == 0 {
		t.Fatal("scenario should drive cross-rack traffic")
	}
	if len(ledger) == 0 {
		t.Fatal("borrow ledger should not be empty")
	}
	for _, res := range results {
		if res.Err != "" {
			t.Fatalf("workload %s failed: %s", res.VM, res.Err)
		}
		if res.Stats.Accesses == 0 {
			t.Fatalf("workload %s did no work", res.VM)
		}
	}
}

// TestFleetCrossRackBorrow asserts the acceptance scenario: a memory-hungry
// VM on a dry rack succeeds via a peer rack, and its remote traffic is
// charged the inter-rack RDMA premium on the lender's fabric.
func TestFleetCrossRackBorrow(t *testing.T) {
	f, err := New(testConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Rack 1 lends (one zombie), rack 0 stays dry.
	if err := f.PushToZombie(1, "rack-01/server-01"); err != nil {
		t.Fatal(err)
	}
	if free := f.Rack(0).FreeRemoteMemory(); free != 0 {
		t.Fatalf("rack 0 should be dry, has %d", free)
	}

	placements, err := f.PlaceVMs([]vm.VM{vm.New("hungry", 1792<<20, 1536<<20)}, core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := placements[0]
	if p.Err != "" {
		t.Fatalf("placement failed: %s", p.Err)
	}
	if p.Rack != "rack-00" || !strings.HasPrefix(p.Host, "rack-00/") {
		t.Fatalf("the VM should land on the dry rack 0, got %s/%s", p.Rack, p.Host)
	}
	if p.BorrowedBytes == 0 || p.BorrowedBytes != p.RemoteBytes {
		t.Fatalf("the whole remote part should be borrowed: %+v", p)
	}
	if p.BorrowedFrom != "rack-01" {
		t.Fatalf("BorrowedFrom = %q, want rack-01", p.BorrowedFrom)
	}
	ledger := f.BorrowLedger()
	if len(ledger) != 1 || ledger[0].Borrower != "rack-00" || ledger[0].Lender != "rack-01" ||
		ledger[0].VM != "hungry" || ledger[0].Bytes < p.BorrowedBytes {
		t.Fatalf("ledger = %+v", ledger)
	}

	// Replaying a workload drives paging over the borrowed buffers: the
	// lender's fabric must see inter-rack operations, each carrying at
	// least the premium, and the borrower's own fabric none.
	results := f.RunWorkloads([]WorkloadRequest{{VM: "hungry", Kind: workload.MicroBench, Iterations: 3, Seed: 1}})
	if results[0].Err != "" {
		t.Fatal(results[0].Err)
	}
	if results[0].Stats.RemoteNs == 0 {
		t.Fatal("the workload should touch remote memory")
	}
	stats := f.FabricStats()
	lender := stats[1]
	if lender.InterRackOps == 0 {
		t.Fatal("lender fabric should account inter-rack operations")
	}
	model := f.Rack(1).Fabric().Model()
	if min := int64(lender.InterRackOps) * model.InterRackHopNs; lender.InterRackNs < min {
		t.Fatalf("inter-rack time %d ns is below the premium floor %d ns", lender.InterRackNs, min)
	}
	if stats[0].InterRackOps != 0 {
		t.Fatalf("borrower fabric should see no inter-rack ops, got %d", stats[0].InterRackOps)
	}

	// Destroy returns the borrowed buffers to the lender.
	before := f.Rack(1).FreeRemoteMemory()
	if err := f.DestroyVM("hungry"); err != nil {
		t.Fatal(err)
	}
	if after := f.Rack(1).FreeRemoteMemory(); after <= before {
		t.Fatalf("lender free memory should grow on destroy: %d -> %d", before, after)
	}
}

// TestFleetFailoverKeepsBorrowedMemory reuses the paper's secondary
// controller promotion at fleet level: after the lender rack loses its
// global controller, borrowed memory keeps serving (one-sided verbs never
// involve the control plane) and new borrows go through the rebuilt
// controller.
func TestFleetFailoverKeepsBorrowedMemory(t *testing.T) {
	f, err := New(testConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PushToZombie(1, "rack-01/server-01"); err != nil {
		t.Fatal(err)
	}
	placements, err := f.PlaceVMs([]vm.VM{vm.New("borrower", 1792<<20, 1536<<20)}, core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if placements[0].Err != "" || placements[0].BorrowedBytes == 0 {
		t.Fatalf("expected a borrowing placement, got %+v", placements[0])
	}

	if err := f.FailoverRack(1, f.Rack(1).Now()+10e9); err != nil {
		t.Fatal(err)
	}
	if !f.Rack(1).Secondary().Promoted() {
		t.Fatal("the lender's secondary should be promoted")
	}

	// The borrowed data path survives the control-plane loss.
	results := f.RunWorkloads([]WorkloadRequest{{VM: "borrower", Kind: workload.MicroBench, Iterations: 3, Seed: 7}})
	if results[0].Err != "" {
		t.Fatalf("borrowed memory should keep serving after fail-over: %s", results[0].Err)
	}
	if results[0].Stats.RemoteNs == 0 {
		t.Fatal("the replay should touch the borrowed buffers")
	}

	// New cross-rack borrows work against the rebuilt controller because the
	// gateway agents were retargeted.
	placements, err = f.PlaceVMs([]vm.VM{vm.New("borrower-2", 1792<<20, 1536<<20)}, core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if placements[0].Err != "" || placements[0].BorrowedFrom != "rack-01" {
		t.Fatalf("post-fail-over borrow should succeed via rack-01, got %+v", placements[0])
	}
	if err := f.DestroyVM("borrower-2"); err != nil {
		t.Fatal(err)
	}
	if err := f.DestroyVM("borrower"); err != nil {
		t.Fatal(err)
	}
}

// TestFleetValidation covers the configuration edges.
func TestFleetValidation(t *testing.T) {
	if _, err := New(Config{Racks: 0, Rack: core.Config{Servers: 1}}); err == nil {
		t.Error("zero racks should fail")
	}
	if _, err := New(Config{Racks: 1, Rack: core.Config{Servers: 1}, Workers: -1}); err == nil {
		t.Error("negative workers should fail")
	}
	f, err := New(testConfig(2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PushToZombie(5, "nope"); err == nil {
		t.Error("out-of-range rack should fail")
	}
	if err := f.DestroyVM("ghost"); err == nil {
		t.Error("unknown VM should fail")
	}
	if got := f.RackNames(); len(got) != 2 || got[0] != "rack-00" || got[1] != "rack-01" {
		t.Errorf("rack names = %v", got)
	}
	res := f.RunWorkloads([]WorkloadRequest{{VM: "ghost", Kind: workload.MicroBench, Iterations: 1, Seed: 1}})
	if res[0].Err == "" {
		t.Error("workload on an unknown VM should fail")
	}
}
