package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/memctl"
	"repro/internal/rdma"
)

// Config parameterises a Fleet.
type Config struct {
	// Racks is the number of racks to federate (at least 1).
	Racks int
	// Rack is the template configuration every rack is built from; the fleet
	// overrides NamePrefix per rack ("rack-00/", "rack-01/", ...).
	Rack core.Config
	// Workers is the worker-pool size used by the batched placement and
	// workload execution paths. 0 or 1 processes the rack shards
	// sequentially; any value yields bit-identical results (asserted by
	// TestFleetParallelMatchesSequential).
	Workers int
}

// Fleet federates N racks behind one control plane: sharded placement and
// execution, cross-rack remote memory borrowing, and fleet-level fault
// tolerance. See the package documentation for the architecture.
type Fleet struct {
	cfg   Config
	names []string
	racks []*core.Rack

	// batchMu serialises the batch entry points (PlaceVMs, RunWorkloads,
	// DestroyVM, FailoverRack): batches parallelise internally across rack
	// shards, they are not concurrent with each other.
	batchMu sync.Mutex

	// mu guards the fleet bookkeeping below.
	mu sync.Mutex
	// vmNames interns fleet-placed VM IDs; vmRack is dense by that ID with
	// the hosting rack index (-1 = not placed / destroyed). The hot
	// per-request lookup in RunWorkloads is one read-locked intern-table
	// probe and a slice index instead of a string-map hash.
	vmNames   *ident.Registry
	vmRack    []int32
	gateways  map[gwKey]*memctl.Agent
	ledger    []Borrow
	overflows []*rackOverflow
	hooks     VMHooks
	// crashed and injector are the fault surface (see chaos.go): crashed
	// servers are refused by every control-plane path and skipped by batch
	// placement; the injector force-fails individual wake attempts. The
	// crash set is a bitset over the fleet's server-name registry.
	crashed  *ident.NameSet
	injector FaultInjector

	// obs is the resolved observability handle (see obs.go); nil means
	// disabled. An atomic pointer so SetObs needs no lock ordering against
	// in-flight batches.
	obs atomic.Pointer[fleetObs]
}

// gwKey identifies a gateway agent: the borrower rack's identity on the
// lender rack's controller and fabric.
type gwKey struct {
	lender, borrower int
}

// Borrow is one cross-rack memory grant in the fleet's borrow ledger.
type Borrow struct {
	// VM is the guest whose remote memory crossed racks.
	VM string
	// Borrower and Lender name the racks.
	Borrower string
	Lender   string
	// Bytes and Buffers describe the grant (whole buffers).
	Bytes   int64
	Buffers int
}

// New builds a fleet of identically configured racks.
func New(cfg Config) (*Fleet, error) {
	if cfg.Racks < 1 {
		return nil, fmt.Errorf("fleet: a fleet needs at least one rack, got %d", cfg.Racks)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("fleet: negative worker count %d", cfg.Workers)
	}
	f := &Fleet{
		cfg:      cfg,
		vmNames:  ident.NewRegistry(),
		gateways: make(map[gwKey]*memctl.Agent),
		crashed:  ident.NewNameSet(ident.NewRegistry()),
	}
	for i := 0; i < cfg.Racks; i++ {
		name := fmt.Sprintf("rack-%02d", i)
		rackCfg := cfg.Rack
		rackCfg.NamePrefix = name + "/"
		r, err := core.NewRack(rackCfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: building %s: %w", name, err)
		}
		o := &rackOverflow{fleet: f, rack: i}
		r.SetRemoteOverflow(o)
		f.names = append(f.names, name)
		f.racks = append(f.racks, r)
		f.overflows = append(f.overflows, o)
	}
	return f, nil
}

// Racks returns the number of racks.
func (f *Fleet) Racks() int { return len(f.racks) }

// RackNames returns the rack names in index order.
func (f *Fleet) RackNames() []string { return append([]string(nil), f.names...) }

// Rack returns the i-th rack for direct (single-rack) operations.
func (f *Fleet) Rack(i int) *core.Rack { return f.racks[i] }

// RackOf returns the rack index hosting a VM placed through the fleet.
func (f *Fleet) RackOf(vmID string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.vmRackLocked(vmID)
}

// vmRackLocked resolves a VM's rack index; the caller holds f.mu.
func (f *Fleet) vmRackLocked(vmID string) (int, bool) {
	id, ok := f.vmNames.Lookup(vmID)
	if !ok || int(id) >= len(f.vmRack) || f.vmRack[id] < 0 {
		return 0, false
	}
	return int(f.vmRack[id]), true
}

// setVMRackLocked records (or clears, with rack == -1) a VM's rack index;
// the caller holds f.mu.
func (f *Fleet) setVMRackLocked(vmID string, rack int) {
	id := f.vmNames.Intern(vmID)
	for int(id) >= len(f.vmRack) {
		f.vmRack = append(f.vmRack, -1)
	}
	f.vmRack[id] = int32(rack)
}

// PushToZombie suspends a server of one rack into Sz, feeding its memory into
// the fleet-wide pool. Serialised against the batch entry points, so posture
// changes and placements can race safely (TestFleetChaosUnderRace).
func (f *Fleet) PushToZombie(rack int, server string) error {
	if err := f.checkRack(rack); err != nil {
		return err
	}
	if err := f.serverFault(rack, server, false); err != nil {
		return err
	}
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	return f.racks[rack].PushToZombie(server)
}

// Wake resumes a server of one rack. A crashed server refuses the wake, and
// an installed FaultInjector can force-fail the attempt (ErrWakeFailed) —
// the server then stays in its sleep state, exactly the stuck-zombie fault
// of the chaos layer. Serialised against the batch entry points.
func (f *Fleet) Wake(rack int, server string) error {
	if err := f.checkRack(rack); err != nil {
		return err
	}
	if err := f.serverFault(rack, server, true); err != nil {
		return err
	}
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	return f.racks[rack].Wake(server)
}

func (f *Fleet) checkRack(i int) error {
	if i < 0 || i >= len(f.racks) {
		return fmt.Errorf("fleet: rack %d outside [0,%d)", i, len(f.racks))
	}
	return nil
}

// AdvanceClock moves simulated time forward on every rack. Serialised
// against the batch entry points and the per-server state operations.
func (f *Fleet) AdvanceClock(deltaNs int64) {
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	for _, r := range f.racks {
		r.AdvanceClock(deltaNs)
	}
}

// TotalEnergyJoules sums the energy of every rack, in rack order.
func (f *Fleet) TotalEnergyJoules() float64 {
	var total float64
	for _, r := range f.racks {
		total += r.TotalEnergyJoules()
	}
	return total
}

// EnergyReportAll concatenates the per-server energy reports of every rack,
// in rack order (server names carry the rack prefix).
func (f *Fleet) EnergyReportAll() []core.EnergyReport {
	var out []core.EnergyReport
	for _, r := range f.racks {
		out = append(out, r.EnergyReportAll()...)
	}
	return out
}

// FreeRemoteMemory returns the unallocated remote memory across the fleet.
func (f *Fleet) FreeRemoteMemory() int64 {
	var total int64
	for _, r := range f.racks {
		total += r.FreeRemoteMemory()
	}
	return total
}

// FabricStats returns each rack's fabric counters, in rack order. The
// InterRack* fields of a lender's stats carry the borrowed-memory traffic.
func (f *Fleet) FabricStats() []rdma.Stats {
	out := make([]rdma.Stats, len(f.racks))
	for i, r := range f.racks {
		out[i] = r.Fabric().Stats()
	}
	return out
}

// BorrowLedger returns a copy of the cross-rack borrow ledger, in grant
// order (batch order, then rack order within a batch).
func (f *Fleet) BorrowLedger() []Borrow {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Borrow(nil), f.ledger...)
}

// bufferSize returns the fleet-wide buffer size (every rack shares the
// template configuration).
func (f *Fleet) bufferSize() int64 {
	if f.cfg.Rack.BufferSize > 0 {
		return f.cfg.Rack.BufferSize
	}
	return memctl.DefaultBufferSize
}

// gateway returns (creating on first use) the borrower rack's gateway agent
// on the lender rack's controller: an uplink device on the lender's fabric
// plus an agent that uses — but never lends — remote memory. Callers hold
// f.mu or run in a sequential phase.
func (f *Fleet) gateway(lender, borrower int) (*memctl.Agent, error) {
	key := gwKey{lender: lender, borrower: borrower}
	if a, ok := f.gateways[key]; ok {
		return a, nil
	}
	lr := f.racks[lender]
	dev, err := lr.Fabric().AttachUplinkDevice("uplink/" + f.names[borrower])
	if err != nil {
		return nil, fmt.Errorf("fleet: uplink %s->%s: %w", f.names[borrower], f.names[lender], err)
	}
	agent, err := memctl.NewAgent(memctl.AgentConfig{
		ID:         memctl.ServerID("gw/" + f.names[borrower]),
		Controller: lr.Controller(),
		Device:     dev,
		// A gateway only uses remote memory; registering with 1 byte fully
		// reserved keeps it out of every lending and scavenging path.
		TotalMem:      1,
		ReservedMem:   1,
		ResolveDevice: func(id memctl.ServerID) *rdma.Device { return lr.ResolveDevice(string(id)) },
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: gateway %s->%s: %w", f.names[borrower], f.names[lender], err)
	}
	f.gateways[key] = agent
	return agent, nil
}

// FailoverRack simulates the loss of one rack's global memory controller:
// the rack's secondary promotes itself and rebuilds the state from its
// mirrored log (core.Rack.FailoverController), after which the fleet
// re-attaches every gateway agent borrowing FROM that rack to the rebuilt
// controller. Borrowed buffers keep serving throughout — one-sided verbs
// never involve the control plane — so remote memory survives the fail-over.
func (f *Fleet) FailoverRack(rack int, nowNs int64) error {
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	if err := f.checkRack(rack); err != nil {
		return err
	}
	rebuilt, err := f.racks[rack].FailoverController(nowNs)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]gwKey, 0, len(f.gateways))
	for key := range f.gateways {
		if key.lender == rack {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].borrower < keys[j].borrower })
	for _, key := range keys {
		if err := f.gateways[key].Retarget(rebuilt); err != nil {
			return fmt.Errorf("fleet: retarget gateway %s->%s: %w", f.names[key.borrower], f.names[rack], err)
		}
	}
	return nil
}

// DestroyVM removes a fleet-placed VM from its rack, returning any borrowed
// buffers to their lenders.
func (f *Fleet) DestroyVM(vmID string) error {
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	f.mu.Lock()
	rack, ok := f.vmRackLocked(vmID)
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: unknown VM %s", vmID)
	}
	if err := f.racks[rack].DestroyVM(vmID); err != nil {
		return err
	}
	f.mu.Lock()
	f.setVMRackLocked(vmID, -1)
	onDeparture := f.hooks.OnDeparture
	f.mu.Unlock()
	if onDeparture != nil {
		onDeparture(vmID, f.names[rack])
	}
	return nil
}

// runRackShards feeds the rack indices [0,n) through the worker pool. With
// Workers <= 1 the single worker consumes the shards in rack order — exactly
// the sequential loop — and with more workers the shards run concurrently;
// either way every shard touches only its own rack (plus pre-reserved
// borrow pools), so results are identical.
func (f *Fleet) runRackShards(n int, run func(rack int)) {
	workers := f.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
