// Package fleet federates many core.Rack instances — the paper's unit tile —
// behind one control plane, the ZombieStack endgame of Section 5 scaled past
// a single rack.
//
// A Fleet owns N racks, each a fully wired Figure 7 system (ACPI platforms
// with Sz, an RDMA fabric, a global memory controller with its secondary,
// per-server agents and the hypervisor paging path). On top it adds three
// things:
//
//   - Sharded placement and execution. Batches of VMs are partitioned across
//     the racks by a sequential planner, then the per-rack work — scheduler
//     filtering, buffer allocation, paging-context construction, workload
//     replay — runs on a configurable worker pool, one worker per rack shard,
//     with results merged in input order. Workers=1 is bit-identical to a
//     sequential loop over the racks (asserted by the tests): the planner is
//     deterministic, rack shards share no mutable state, and cross-rack
//     borrows are pre-reserved before the pool starts.
//
//   - Federated remote memory. When a rack's own controller runs dry, the
//     fleet borrows buffers from a peer rack: a gateway agent — registered on
//     the lender's controller, attached to the lender's fabric as an uplink
//     device — allocates with the same GS_alloc_ext path any in-rack user
//     would, and every one-sided operation on the borrowed buffers pays the
//     inter-rack hop premium of the rdma cost model. The borrow ledger
//     records every cross-rack grant.
//
//   - Fleet-level fault tolerance. Each rack already mirrors its controller
//     into a secondary (Section 4.1); Fleet.FailoverRack drives the promotion
//     and then re-attaches both the rack's own agents and the fleet's gateway
//     agents to the rebuilt controller, so borrowed memory survives the loss
//     of the lender's control plane — the data never moved, only the
//     metadata owner did.
//
// The fleet additionally exposes an injectable fault surface for the chaos
// layer (see chaos.go): CrashServer / ReviveServer take a server out of
// every control-plane path and out of batch placement, SetFaultInjector
// force-fails individual wake attempts (ErrWakeFailed, the stuck-zombie
// fault), and KillController is the scripted controller loss. The per-server
// state operations are serialised against the batch entry points, so
// placements, fail-overs and faults can race safely under -race
// (TestFleetChaosUnderRace).
package fleet
