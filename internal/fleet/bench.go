package fleet

import (
	"fmt"

	"repro/internal/acpi"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workload"
)

// BenchSpec sizes the canonical fleet benchmark scenario shared by
// BenchmarkFleet* and cmd/benchfleet, so the CI trajectory and the local
// benchmarks measure the same workload.
type BenchSpec struct {
	// Racks and Servers shape the fleet (Servers per rack).
	Racks   int
	Servers int
	// Workers is the fleet worker-pool size under test.
	Workers int
	// Iterations is the paging-replay depth per workload request.
	Iterations int
}

// DefaultBenchSpec is the acceptance configuration: a 4-rack fleet whose
// per-rack work is balanced, so the Workers axis isolates the worker-pool
// scaling.
func DefaultBenchSpec(workers int) BenchSpec {
	return BenchSpec{Racks: 4, Servers: 4, Workers: workers, Iterations: 3}
}

// NewBenchFleet builds the benchmark fleet: every rack pushes half its
// servers into Sz and hosts one hard-paging VM (50% local memory) per awake
// server, served from the rack's own zombie pool. It returns the fleet and
// the workload batch the benchmark replays.
func NewBenchFleet(spec BenchSpec) (*Fleet, []WorkloadRequest, error) {
	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = 1 << 30
	f, err := New(Config{
		Racks: spec.Racks,
		Rack: core.Config{
			Servers:           spec.Servers,
			Board:             board,
			BufferSize:        16 << 20,
			HostReservedBytes: 128 << 20,
		},
		Workers: spec.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	for ri := 0; ri < spec.Racks; ri++ {
		servers := f.Rack(ri).Servers()
		for _, name := range servers[len(servers)/2:] {
			if err := f.PushToZombie(ri, name); err != nil {
				return nil, nil, err
			}
		}
	}
	awakePerRack := spec.Servers - spec.Servers/2
	var specs []vm.VM
	for i := 0; i < spec.Racks*awakePerRack; i++ {
		specs = append(specs, vm.New(fmt.Sprintf("bench-vm-%02d", i), 1792<<20, 1536<<20))
	}
	placements, err := f.PlaceVMs(specs, core.CreateVMOptions{})
	if err != nil {
		return nil, nil, err
	}
	var reqs []WorkloadRequest
	for i, p := range placements {
		if p.Err != "" {
			return nil, nil, fmt.Errorf("fleet: bench placement %s: %s", p.VM, p.Err)
		}
		reqs = append(reqs, WorkloadRequest{
			VM:         p.VM,
			Kind:       workload.MicroBench,
			Iterations: spec.Iterations,
			Seed:       int64(i + 1),
		})
	}
	return f, reqs, nil
}
