package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/memctl"
	"repro/internal/placement"
	"repro/internal/vm"
)

// Placement is the fleet's answer for one VM of a batch.
type Placement struct {
	VM   string
	Rack string
	Host string
	// LocalBytes / RemoteBytes mirror the rack scheduler's decision;
	// BorrowedBytes is the part of RemoteBytes served by peer racks and
	// BorrowedFrom names the lender(s).
	LocalBytes    int64
	RemoteBytes   int64
	BorrowedBytes int64
	BorrowedFrom  string
	// Err is non-empty when the VM could not be placed; the rest of the
	// batch proceeds.
	Err string
}

// rackPlan is the partitioner's output for one rack: which batch entries it
// executes and, for the entries that must borrow, the lender of every
// pre-reserved buffer in consumption order.
type rackPlan struct {
	specIdx     []int
	borrowSlots []int // lender rack index per buffer, FIFO
}

// PlaceVMs places a batch of VMs across the fleet.
//
// Phase 1 — a sequential partitioner walks the batch in order and assigns
// each VM to the first rack (in index order) that fits, simulating the
// rack scheduler against capacity snapshots; when a VM's remote part
// exceeds its home rack's free pool, whole-buffer borrows are planned
// against peer racks (index order) and pre-allocated through the gateway
// agents before any rack executes.
//
// Phase 2 — the per-rack work (scheduler, admission, buffer allocation,
// paging-context construction) runs on the worker pool, one shard per rack,
// writing results into the batch-ordered slice. Because the borrow pools
// are exclusive per rack and pre-funded, shards share no mutable state and
// the outcome is bit-identical for any Workers value.
func (f *Fleet) PlaceVMs(specs []vm.VM, opts core.CreateVMOptions) ([]Placement, error) {
	f.batchMu.Lock()
	defer f.batchMu.Unlock()

	results := make([]Placement, len(specs))
	for i, spec := range specs {
		results[i].VM = spec.ID
	}

	// One crash snapshot per batch: the partitioner plans against it and the
	// execution shards exclude exactly the same dead hosts, so a crash
	// landing mid-batch cannot split the two views.
	crashed := f.crashedSnapshot()
	plans, err := f.partition(specs, opts, results, crashed)
	if err != nil {
		return nil, err
	}
	if err := f.fundBorrowPools(plans); err != nil {
		// Racks funded before the failure must not keep their pools: return
		// every pre-reserved buffer to its lender so no memory leaks and the
		// next batch plans against a clean slate.
		f.mu.Lock()
		for _, o := range f.overflows {
			if derr := o.drain(); derr != nil {
				err = fmt.Errorf("%w (draining pools: %v)", err, derr)
			}
		}
		f.mu.Unlock()
		return nil, err
	}

	// The same crash snapshot the partitioner planned against keeps the rack
	// schedulers off dead servers at execution time.
	shardOpts := opts
	if crashed != nil {
		if shardOpts.ExcludeHosts == nil {
			shardOpts.ExcludeHosts = crashed
		} else {
			// The caller's exclusion set is scoped by its own registry; merge
			// name-wise into a fresh set (cold path — both sets are tiny).
			merged := ident.NewNameSet(ident.NewRegistry())
			for _, h := range shardOpts.ExcludeHosts.Names() {
				merged.Add(h)
			}
			for _, h := range crashed.Names() {
				merged.Add(h)
			}
			shardOpts.ExcludeHosts = merged
		}
	}
	// Each shard records the rack index of its own placements; shards write
	// disjoint entries, so no lock is needed and the bookkeeping loop below
	// never rescans rack names.
	rackIdx := make([]int32, len(specs))
	for i := range rackIdx {
		rackIdx[i] = -1
	}
	f.runRackShards(len(f.racks), func(ri int) {
		rack := f.racks[ri]
		for _, si := range plans[ri].specIdx {
			guest, err := rack.CreateVM(specs[si], shardOpts)
			if err != nil {
				results[si].Err = err.Error()
				continue
			}
			results[si].Rack = f.names[ri]
			results[si].Host = guest.Host
			results[si].LocalBytes = guest.LocalBytes
			results[si].RemoteBytes = guest.RemoteBytes
			results[si].BorrowedBytes = guest.BorrowedBytes
			results[si].BorrowedFrom = guest.BorrowedFrom
			rackIdx[si] = int32(ri)
		}
	})

	// Drain anything the shards did not consume (a mid-batch placement
	// failure leaves its pre-reserved buffers unused) and fold the per-rack
	// borrow ledgers into the fleet ledger in rack order.
	f.mu.Lock()
	for _, o := range f.overflows {
		if err := o.drain(); err != nil {
			f.mu.Unlock()
			return nil, err
		}
		f.ledger = append(f.ledger, o.takeLedger()...)
	}
	for i := range results {
		if results[i].Err == "" {
			f.setVMRackLocked(results[i].VM, int(rackIdx[i]))
		}
	}
	onArrival := f.hooks.OnArrival
	f.mu.Unlock()
	if onArrival != nil {
		for _, p := range results {
			if p.Err == "" {
				onArrival(p)
			}
		}
	}
	f.observePlacement(len(specs), plans, results)
	return results, nil
}

// partition assigns every batch entry a rack and plans the cross-rack
// borrows, mirroring the capacity checks core.Rack.CreateVM performs at
// execution time so phase 2 never surprises phase 1. crashed is the batch's
// crash snapshot (nil when nothing is crashed); the caller feeds the same
// snapshot to the execution shards.
func (f *Fleet) partition(specs []vm.VM, opts core.CreateVMOptions, results []Placement, crashed *ident.NameSet) ([]rackPlan, error) {
	n := len(f.racks)
	bufSize := f.bufferSize()
	plans := make([]rackPlan, n)
	sched := placement.NewScheduler()

	// Capacity snapshots: the scheduler's host view plus the free remote
	// pool of every rack, in whole buffers. A rack's pool serves its own
	// VMs and peer borrows out of the same bucket, exactly like the live
	// controller. Crashed servers are dropped from the host view, so the
	// partitioner never lands a VM on a dead machine.
	hosts := make([][]placement.Host, n)
	freeBufs := make([]int64, n)
	for i, r := range f.racks {
		hosts[i] = r.HostCapacities()
		if crashed.Len() > 0 {
			alive := hosts[i][:0]
			for _, h := range hosts[i] {
				if !crashed.Has(string(h.ID)) {
					alive = append(alive, h)
				}
			}
			hosts[i] = alive
		}
		freeBufs[i] = r.FreeRemoteMemory() / bufSize
	}
	borrowable := func(home int) int64 {
		var total int64
		for j := 0; j < n; j++ {
			if j != home {
				total += freeBufs[j] * bufSize
			}
		}
		return total
	}

	for si, spec := range specs {
		placed := false
		for ri := 0; ri < n && !placed; ri++ {
			dec, err := sched.Place(hosts[ri], placement.Request{
				VM:                    spec,
				RemoteMemoryAvailable: freeBufs[ri]*bufSize + borrowable(ri),
				Strategy:              opts.Strategy,
			})
			if err != nil {
				continue
			}
			if dec.RemoteBytes > 0 {
				needBufs := (dec.RemoteBytes + bufSize - 1) / bufSize
				if freeBufs[ri]*bufSize >= dec.RemoteBytes {
					// The home rack guarantees the whole remote part.
					freeBufs[ri] -= needBufs
				} else if borrowable(ri) >= dec.RemoteBytes {
					// Borrow the whole remote part from peers, index order.
					rem := needBufs
					for j := 0; j < n && rem > 0; j++ {
						if j == ri {
							continue
						}
						take := freeBufs[j]
						if take > rem {
							take = rem
						}
						freeBufs[j] -= take
						rem -= take
						for k := int64(0); k < take; k++ {
							plans[ri].borrowSlots = append(plans[ri].borrowSlots, j)
						}
					}
				} else {
					// Neither the home pool nor the peers can serve the
					// remote part whole; try the next rack.
					continue
				}
			}
			// Commit the CPU and local memory on the chosen host.
			for hi := range hosts[ri] {
				if hosts[ri][hi].ID == dec.Host {
					hosts[ri][hi].UsedCPUs += spec.VCPUs
					hosts[ri][hi].UsedMemory += dec.LocalBytes
					break
				}
			}
			plans[ri].specIdx = append(plans[ri].specIdx, si)
			placed = true
		}
		if !placed {
			results[si].Err = fmt.Sprintf("fleet: no rack can place VM %s", spec.ID)
		}
	}
	return plans, nil
}

// fundBorrowPools pre-allocates every planned borrow through the gateway
// agents, sequentially, and hands the buffers to the borrower racks'
// overflow pools in consumption order.
func (f *Fleet) fundBorrowPools(plans []rackPlan) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	bufSize := f.bufferSize()
	for ri := range plans {
		slots := plans[ri].borrowSlots
		if len(slots) == 0 {
			continue
		}
		// Aggregate one allocation per lender, then deal the handles back
		// out in slot order (handles of one lender are interchangeable).
		perLender := make(map[int]int)
		for _, j := range slots {
			perLender[j]++
		}
		queues := make(map[int][]*memctl.RemoteBuffer)
		// If a later lender fails, buffers already allocated for this rack
		// are not yet pooled anywhere — hand them straight back.
		release := func(cause error) error {
			for _, q := range queues {
				if rerr := memctl.ReleaseHandles(q); rerr != nil {
					cause = fmt.Errorf("%w (releasing pre-reserved buffers: %v)", cause, rerr)
				}
			}
			return cause
		}
		for j := 0; j < len(f.racks); j++ {
			count, ok := perLender[j]
			if !ok {
				continue
			}
			gw, err := f.gateway(j, ri)
			if err != nil {
				return release(err)
			}
			bufs, err := gw.RequestExt(int64(count) * bufSize)
			if err != nil {
				return release(fmt.Errorf("fleet: pre-reserving %d buffers on %s for %s: %w",
					count, f.names[j], f.names[ri], err))
			}
			queues[j] = bufs
		}
		entries := make([]poolEntry, 0, len(slots))
		for _, j := range slots {
			q := queues[j]
			entries = append(entries, poolEntry{lender: j, buf: q[0]})
			queues[j] = q[1:]
		}
		f.overflows[ri].fund(entries)
	}
	return nil
}
