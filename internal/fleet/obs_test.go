package fleet

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// runObservedScenario drives the canonical scenario plus the chaos surface
// with an attached obs bundle and returns the bundle.
func runObservedScenario(t *testing.T, workers int) *obs.Obs {
	t.Helper()
	f, specs := buildScenario(t, workers)
	o := obs.New(obs.Options{TraceCapacity: 256, Clock: obs.StepClock()})
	f.SetObs(o)

	crashTarget := f.Rack(0).Servers()[3]
	if err := f.CrashServer(0, crashTarget); err != nil {
		t.Fatal(err)
	}
	placements, err := f.PlaceVMs(specs, core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []WorkloadRequest
	for i, p := range placements {
		if p.Err != "" {
			continue
		}
		reqs = append(reqs, WorkloadRequest{
			VM: p.VM, Kind: workload.AllKinds()[i%len(workload.AllKinds())],
			Iterations: 1, Seed: int64(i + 1),
		})
	}
	reqs = append(reqs, WorkloadRequest{VM: "no-such-vm", Kind: workload.AllKinds()[0]})
	f.RunWorkloads(reqs)
	if err := f.KillController(1, f.Rack(1).Now()+10e9); err != nil {
		t.Fatal(err)
	}
	if err := f.ReviveServer(0, crashTarget); err != nil {
		t.Fatal(err)
	}
	return o
}

// TestFleetObsCounters checks the counters against the known scenario
// outcome: every batch, crash, failover and revive is accounted.
func TestFleetObsCounters(t *testing.T) {
	o := runObservedScenario(t, 2)
	snap := o.Metrics.Snapshot()
	want := map[string]uint64{
		"fleet_place_batches_total":    1,
		"fleet_workload_batches_total": 1,
		"fleet_workload_errors_total":  1, // the unknown-VM request
		"fleet_chaos_crashes_total":    1,
		"fleet_chaos_revives_total":    1,
		"fleet_chaos_failovers_total":  1,
	}
	for name, v := range want {
		if snap.Counters[name] != v {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], v)
		}
	}
	placed := snap.Counters["fleet_place_vms_total"]
	failed := snap.Counters["fleet_place_failed_total"]
	if placed+failed != 10 {
		t.Errorf("placed %d + failed %d != 10 specs", placed, failed)
	}
	if got := snap.Counters["fleet_workload_requests_total"]; got != placed+1 {
		t.Errorf("workload requests = %d, want %d", got, placed+1)
	}
}

// TestFleetObsTraceDeterministic is the acceptance check at the fleet
// layer: the NDJSON trace of two identical runs — including parallel
// placement and workload shards — is byte-identical, and stays identical
// across worker-pool sizes because events are emitted from the coordinator
// in rack order.
func TestFleetObsTraceDeterministic(t *testing.T) {
	render := func(workers int) []byte {
		o := runObservedScenario(t, workers)
		var buf bytes.Buffer
		if err := o.Trace.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(2), render(2)
	if !bytes.Equal(a, b) {
		t.Errorf("same-config runs diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if seq := render(1); !bytes.Equal(a, seq) {
		t.Errorf("parallel trace diverged from sequential:\n--- w=2 ---\n%s--- w=1 ---\n%s", a, seq)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}

// TestFleetObsDetach checks SetObs(nil) turns instrumentation back off.
func TestFleetObsDetach(t *testing.T) {
	f, specs := buildScenario(t, 1)
	o := obs.New(obs.Options{})
	f.SetObs(o)
	f.SetObs(nil)
	if _, err := f.PlaceVMs(specs[:2], core.CreateVMOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Snapshot().Counters["fleet_place_batches_total"]; got != 0 {
		t.Fatalf("detached fleet still counted %d batches", got)
	}
	if o.Trace.Len() != 0 {
		t.Fatalf("detached fleet still traced %d events", o.Trace.Len())
	}
}
