package fleet

import (
	"testing"

	"repro/internal/acpi"
	"repro/internal/core"
	"repro/internal/vm"
)

// TestFleetDynamicArrivalHooks drives the online control plane's surface:
// single-VM placement through PlaceVM, arrival/departure observation through
// VMHooks, and the conventional-sleep path through Suspend.
func TestFleetDynamicArrivalHooks(t *testing.T) {
	f, err := New(testConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}

	var arrived []Placement
	var departed []string
	f.SetVMHooks(VMHooks{
		OnArrival:   func(p Placement) { arrived = append(arrived, p) },
		OnDeparture: func(vmID, rack string) { departed = append(departed, vmID+"@"+rack) },
	})

	p, err := f.PlaceVM(vm.New("solo", 256<<20, 128<<20), core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrived) != 1 || arrived[0].VM != "solo" || arrived[0].Rack != p.Rack {
		t.Fatalf("arrival hook saw %+v, want the solo placement on %s", arrived, p.Rack)
	}

	// Batch placements feed the same hook, one call per placed VM.
	if _, err := f.PlaceVMs([]vm.VM{
		vm.New("batch-a", 128<<20, 64<<20),
		vm.New("batch-b", 128<<20, 64<<20),
	}, core.CreateVMOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(arrived) != 3 {
		t.Fatalf("after a batch of two, arrival hook fired %d times, want 3", len(arrived))
	}

	if err := f.DestroyVM("solo"); err != nil {
		t.Fatal(err)
	}
	if len(departed) != 1 || departed[0] != "solo@"+p.Rack {
		t.Fatalf("departure hook saw %v, want [solo@%s]", departed, p.Rack)
	}

	// An oversized single arrival surfaces the placement failure as an error
	// instead of a silent Err field.
	if _, err := f.PlaceVM(vm.New("whale", 64<<30, 32<<30), core.CreateVMOptions{}); err == nil {
		t.Fatal("PlaceVM accepted a VM larger than the fleet")
	}

	// Suspend routes S3 through the conventional sleep path and Sz through
	// the zombie path.
	empty := "" // find a server with no VMs to suspend
	for _, name := range f.Rack(1).Servers() {
		if s, err := f.Rack(1).Server(name); err == nil && len(s.VMs()) == 0 {
			empty = name
			break
		}
	}
	if empty == "" {
		t.Fatal("no empty server to suspend")
	}
	if err := f.Suspend(1, empty, acpi.S3); err != nil {
		t.Fatal(err)
	}
	s, err := f.Rack(1).Server(empty)
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != acpi.S3 {
		t.Fatalf("server %s in %v after Suspend(S3)", empty, s.State())
	}
	if err := f.Suspend(5, empty, acpi.S3); err == nil {
		t.Fatal("Suspend accepted an out-of-range rack index")
	}
}
