package fleet

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
)

// BenchmarkFleetWorkloads replays the canonical paging batch over a 4-rack
// fleet at several worker-pool sizes. The per-rack work is balanced, so on a
// multi-core host Workers=4 should beat Workers=1 by well over 1.5x (the
// results are bit-identical either way — see
// TestFleetParallelMatchesSequential). cmd/benchfleet runs the same scenario
// and records the trajectory in BENCH_fleet.json.
func BenchmarkFleetWorkloads(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			f, reqs, err := NewBenchFleet(DefaultBenchSpec(workers))
			if err != nil {
				b.Fatal(err)
			}
			// Warm up: the first replay on a fresh fleet faults every page
			// in; the timed loop then measures steady-state replays.
			for _, res := range f.RunWorkloads(reqs) {
				if res.Err != "" {
					b.Fatal(res.Err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := f.RunWorkloads(reqs)
				for _, res := range results {
					if res.Err != "" {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkFleetPlacement measures the batched placement path (partition,
// borrow pre-reservation, per-rack execution) at both pool sizes.
func BenchmarkFleetPlacement(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f, err := New(testConfig(4, 4, workers))
				if err != nil {
					b.Fatal(err)
				}
				for _, rack := range []int{1, 3} {
					for _, server := range f.Rack(rack).Servers()[1:] {
						if err := f.PushToZombie(rack, server); err != nil {
							b.Fatal(err)
						}
					}
				}
				var specs []vm.VM
				for v := 0; v < 6; v++ {
					specs = append(specs, vm.New(fmt.Sprintf("vm-%02d", v), 1792<<20, 1536<<20))
				}
				b.StartTimer()
				placements, err := f.PlaceVMs(specs, core.CreateVMOptions{})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range placements {
					if p.Err != "" {
						b.Fatal(p.Err)
					}
				}
			}
		})
	}
}
