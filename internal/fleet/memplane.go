package fleet

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/memplane"
	"repro/internal/workload"
)

// MemplaneOf returns (building on first use) the data plane of a fleet-placed
// VM — the handle through which workloads push real bytes into zombie
// servers' granted buffers.
func (f *Fleet) MemplaneOf(vmID string) (*memplane.Plane, error) {
	f.mu.Lock()
	rack, ok := f.vmRackLocked(vmID)
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown VM %s", vmID)
	}
	return f.racks[rack].MemplaneOf(vmID)
}

// SetDataChaos arms every rack's future data planes with a chaos plan (fabric
// windows degrade remote charges, looked up at now()).
func (f *Fleet) SetDataChaos(plan *chaos.Plan, now func() int64) {
	for _, r := range f.racks {
		r.SetDataChaos(plan, now)
	}
}

// RehomeServerMemory migrates every live data-plane page served by a crashed
// server onto healthy hosts of its rack and returns the aggregate report. The
// server must be crashed first (CrashServer), otherwise the migration would
// race live traffic to the same frames.
func (f *Fleet) RehomeServerMemory(rack int, server string) (memplane.RehomeReport, error) {
	if err := f.checkRack(rack); err != nil {
		return memplane.RehomeReport{}, err
	}
	f.mu.Lock()
	crashed := f.crashed.Has(server)
	f.mu.Unlock()
	if !crashed {
		return memplane.RehomeReport{}, fmt.Errorf("fleet: %s is not crashed; crash it before re-homing its memory", server)
	}
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	return f.racks[rack].RehomeDataHost(server)
}

// runDataTraffic replays a workload's access stream as real byte traffic
// through the VM's data plane: every access becomes a full-page write or read
// at the workload's page, so the bytes demonstrably traverse the zombie
// servers' buffers (and pay the fabric charges the ledger predicts).
func runDataTraffic(rack *core.Rack, req WorkloadRequest) (memplane.Stats, error) {
	p, err := rack.MemplaneOf(req.VM)
	if err != nil {
		return memplane.Stats{}, err
	}
	guest, err := rack.VM(req.VM)
	if err != nil {
		return memplane.Stats{}, err
	}
	ps := p.PageSize()
	pages := int(req.DataBytes / ps)
	if pages < 1 {
		pages = 1
	}
	if max := guest.Paging.Pages(); pages > max {
		pages = max
	}
	stream, err := workload.NewStream(workload.ProfileOf(req.Kind), pages, req.Iterations, req.Seed)
	if err != nil {
		return memplane.Stats{}, err
	}
	buf := make([]byte, ps)
	for {
		a, ok := stream.Next()
		if !ok {
			break
		}
		addr := int64(a.Page) * ps
		if a.Write {
			for i := range buf {
				buf[i] = byte(int64(a.Page) + int64(i)*3 + req.Seed)
			}
			if _, _, err := p.Write(addr, buf); err != nil {
				return p.Stats(), err
			}
		} else {
			if _, _, err := p.Read(addr, buf); err != nil {
				return p.Stats(), err
			}
		}
	}
	return p.Stats(), nil
}
