package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/acpi"
	"repro/internal/core"
	"repro/internal/vm"
)

func TestCrashServerGatesControlPlane(t *testing.T) {
	f, err := New(testConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	victim := f.Rack(0).Servers()[1]
	if err := f.CrashServer(0, victim); err != nil {
		t.Fatal(err)
	}
	if err := f.CrashServer(0, victim); err == nil {
		t.Fatal("double crash should fail")
	}
	if err := f.PushToZombie(0, victim); !errors.Is(err, ErrServerCrashed) {
		t.Fatalf("PushToZombie on crashed server: got %v, want ErrServerCrashed", err)
	}
	if err := f.Wake(0, victim); !errors.Is(err, ErrServerCrashed) {
		t.Fatalf("Wake on crashed server: got %v, want ErrServerCrashed", err)
	}
	if err := f.Suspend(0, victim, acpi.S3); !errors.Is(err, ErrServerCrashed) {
		t.Fatalf("Suspend on crashed server: got %v, want ErrServerCrashed", err)
	}
	if got := f.CrashedServers(); len(got) != 1 || got[0] != victim {
		t.Fatalf("CrashedServers = %v, want [%s]", got, victim)
	}
	if err := f.ReviveServer(0, victim); err != nil {
		t.Fatal(err)
	}
	if err := f.ReviveServer(0, victim); err == nil {
		t.Fatal("reviving a healthy server should fail")
	}
	if err := f.PushToZombie(0, victim); err != nil {
		t.Fatalf("revived server should accept operations: %v", err)
	}
}

func TestCrashedServerExcludedFromPlacement(t *testing.T) {
	f, err := New(testConfig(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Crash the first server (the stacking scheduler's preferred target) and
	// place one VM: it must land on the surviving server.
	names := f.Rack(0).Servers()
	if err := f.CrashServer(0, names[0]); err != nil {
		t.Fatal(err)
	}
	p, err := f.PlaceVM(vm.New("vm-0", 256<<20, 128<<20), core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Host == names[0] {
		t.Fatalf("VM placed on crashed server %s", p.Host)
	}
}

// failEveryWake is a FaultInjector failing every wake attempt.
type failEveryWake struct{ calls atomic.Int64 }

func (fi *failEveryWake) WakeFails(rack int, server string) bool {
	fi.calls.Add(1)
	return true
}

func TestFaultInjectorFailsWake(t *testing.T) {
	f, err := New(testConfig(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	sleeper := f.Rack(0).Servers()[1]
	if err := f.Suspend(0, sleeper, acpi.S3); err != nil {
		t.Fatal(err)
	}
	fi := &failEveryWake{}
	f.SetFaultInjector(fi)
	if err := f.Wake(0, sleeper); !errors.Is(err, ErrWakeFailed) {
		t.Fatalf("Wake under injector: got %v, want ErrWakeFailed", err)
	}
	srv, err := f.Rack(0).Server(sleeper)
	if err != nil {
		t.Fatal(err)
	}
	if srv.State() != acpi.S3 {
		t.Fatalf("failed wake left server in %v, want S3", srv.State())
	}
	f.SetFaultInjector(nil)
	if err := f.Wake(0, sleeper); err != nil {
		t.Fatalf("Wake after injector removed: %v", err)
	}
	if fi.calls.Load() == 0 {
		t.Fatal("injector was never consulted")
	}
}

func TestKillControllerKeepsBorrowedMemory(t *testing.T) {
	f, specs := buildScenario(t, 2)
	placements, err := f.PlaceVMs(specs, core.CreateVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := f.BorrowLedger()
	if len(before) == 0 {
		t.Fatal("scenario placed no cross-rack borrows")
	}
	// Kill the controller of lender rack 1 mid-run (the kill instant sits
	// past the heartbeat timeout, so the secondary notices): the secondary
	// promotes and the borrowed buffers keep serving.
	if err := f.KillController(1, f.Rack(1).Now()+10e9); err != nil {
		t.Fatal(err)
	}
	for _, p := range placements {
		if p.Err != "" {
			continue
		}
		if _, ok := f.RackOf(p.VM); !ok {
			t.Fatalf("VM %s lost after controller kill", p.VM)
		}
	}
	if got := f.BorrowLedger(); len(got) != len(before) {
		t.Fatalf("borrow ledger changed across controller kill: %d -> %d", len(before), len(got))
	}
	// The fleet still operates: destroy everything and get the buffers back.
	for _, p := range placements {
		if p.Err == "" {
			if err := f.DestroyVM(p.VM); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFleetChaosUnderRace fires concurrent placements, destroys, fail-overs
// and chaos faults (crash/revive, zombie pushes, wakes, clock advances) at
// one Fleet and asserts the ledgers still balance afterwards. Run under the
// CI -race step, it pins the locking contract of the fault surface.
func TestFleetChaosUnderRace(t *testing.T) {
	f, err := New(testConfig(4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Racks 1 and 3 lend; keep their first server awake.
	for _, rack := range []int{1, 3} {
		for _, server := range f.Rack(rack).Servers()[1:] {
			if err := f.PushToZombie(rack, server); err != nil {
				t.Fatal(err)
			}
		}
	}
	lentBefore := f.FreeRemoteMemory()
	if lentBefore <= 0 {
		t.Fatal("no remote memory lent")
	}

	const rounds = 30
	var wg sync.WaitGroup
	var placedMu sync.Mutex
	placed := make(map[string]bool)

	// Placer: dynamic arrivals and departures through the batch machinery.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			id := fmt.Sprintf("race-vm-%02d", i)
			p, err := f.PlaceVM(vm.New(id, 1<<30, 512<<20), core.CreateVMOptions{})
			if err != nil {
				continue // capacity pressure and crashes may refuse arrivals
			}
			placedMu.Lock()
			placed[p.VM] = true
			placedMu.Unlock()
			if i%3 == 0 {
				if err := f.DestroyVM(id); err == nil {
					placedMu.Lock()
					delete(placed, id)
					placedMu.Unlock()
				}
			}
		}
	}()

	// Fail-over: repeatedly kill the lender racks' controllers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// A racing AdvanceClock can make the primary look alive again;
			// a refused fail-over is part of the storm.
			_ = f.KillController(1+2*(i%2), f.Rack(0).Now()+10e9)
		}
	}()

	// Chaos: crash and revive a non-hosting server of rack 2.
	wg.Add(1)
	go func() {
		defer wg.Done()
		victim := f.Rack(2).Servers()[3]
		for i := 0; i < rounds; i++ {
			if err := f.CrashServer(2, victim); err == nil {
				_ = f.ReviveServer(2, victim)
			}
		}
	}()

	// Posture churn: zombie pushes and wakes on rack 0's tail server, plus
	// clock advances.
	wg.Add(1)
	go func() {
		defer wg.Done()
		server := f.Rack(0).Servers()[3]
		for i := 0; i < rounds; i++ {
			_ = f.PushToZombie(0, server)
			_ = f.Wake(0, server)
			f.AdvanceClock(1e6)
		}
	}()

	wg.Wait()

	// Ledger balance: every surviving VM is still resolvable, every borrow
	// names valid racks, and destroying the survivors returns every borrowed
	// buffer to the pool.
	rackNames := map[string]bool{}
	for _, n := range f.RackNames() {
		rackNames[n] = true
	}
	for _, b := range f.BorrowLedger() {
		if !rackNames[b.Borrower] || !rackNames[b.Lender] {
			t.Fatalf("borrow ledger entry references unknown racks: %+v", b)
		}
		if b.Bytes <= 0 || b.Buffers <= 0 {
			t.Fatalf("borrow ledger entry with non-positive grant: %+v", b)
		}
	}
	placedMu.Lock()
	survivors := make([]string, 0, len(placed))
	for id := range placed {
		survivors = append(survivors, id)
	}
	placedMu.Unlock()
	for _, id := range survivors {
		if _, ok := f.RackOf(id); !ok {
			t.Fatalf("placed VM %s not resolvable after the storm", id)
		}
		if err := f.DestroyVM(id); err != nil {
			t.Fatalf("destroying survivor %s: %v", id, err)
		}
	}
	// Wake rack 0's tail server back if a push left it in Sz, then check the
	// free pool: exactly the lenders' memory (rack 0's server lends nothing
	// once awake) must be back.
	_ = f.Wake(0, f.Rack(0).Servers()[3])
	if got := f.FreeRemoteMemory(); got != lentBefore {
		t.Fatalf("free remote memory after the storm = %d, want %d (buffers leaked)", got, lentBefore)
	}
	if j := f.TotalEnergyJoules(); j < 0 {
		t.Fatalf("negative fleet energy %v", j)
	}
}
