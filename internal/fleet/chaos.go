package fleet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/obs"
)

// The fleet's injectable fault surface: the control-plane hooks the chaos
// layer (and the chaos tests) drive failures through. Crashing a server
// takes it out of every control-plane path — wakes, suspends, zombie pushes
// and batch placement all refuse it — until it is revived; a FaultInjector
// force-fails individual wake attempts (the stuck-zombie fault); and
// KillController is the scripted controller loss, promoting the rack's
// secondary mid-run exactly like FailoverRack. All of it is safe under
// concurrent batches: the per-server state operations take the batch lock,
// and the crash set is consulted under the fleet mutex.

// ErrServerCrashed is returned by control-plane operations aimed at a
// crashed server.
var ErrServerCrashed = errors.New("fleet: server is crashed")

// ErrWakeFailed is returned by Wake when the installed FaultInjector fails
// the attempt; the server stays in its sleep state.
var ErrWakeFailed = errors.New("fleet: wake attempt failed (injected fault)")

// FaultInjector decides, per control-plane operation, whether an injected
// fault fires. Implementations must be safe for concurrent use.
type FaultInjector interface {
	// WakeFails reports whether this wake attempt must fail. The server
	// remains in its current sleep state and Wake returns ErrWakeFailed.
	WakeFails(rack int, server string) bool
}

// SetFaultInjector installs the injector (nil removes it).
func (f *Fleet) SetFaultInjector(fi FaultInjector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.injector = fi
}

// CrashServer marks one server as crashed: every subsequent control-plane
// operation on it fails with ErrServerCrashed and batch placement skips its
// capacity, until ReviveServer. Crashing an already-crashed server is an
// error (the caller's model has diverged from the fleet's).
func (f *Fleet) CrashServer(rack int, server string) error {
	if err := f.checkRack(rack); err != nil {
		return err
	}
	if _, err := f.racks[rack].Server(server); err != nil {
		return err
	}
	f.mu.Lock()
	if f.crashed.Has(server) {
		f.mu.Unlock()
		return fmt.Errorf("fleet: %s already crashed", server)
	}
	f.crashed.Add(server)
	f.mu.Unlock()
	// Surface the crash on the data plane too: remote operations against the
	// server's frames now time out until ReviveServer or a re-home.
	f.racks[rack].CrashDataHost(server)
	if ob := f.obs.Load(); ob != nil {
		ob.crashes.Inc()
		ob.trace.Emit("fleet", "chaos.crash", obs.F("rack", int64(rack)), obs.FS("server", server))
	}
	return nil
}

// ReviveServer clears a server's crashed mark; the server resumes in
// whatever sleep state it held when it crashed.
func (f *Fleet) ReviveServer(rack int, server string) error {
	if err := f.checkRack(rack); err != nil {
		return err
	}
	f.mu.Lock()
	if !f.crashed.Has(server) {
		f.mu.Unlock()
		return fmt.Errorf("fleet: %s is not crashed", server)
	}
	f.crashed.Remove(server)
	f.mu.Unlock()
	f.racks[rack].ReviveDataHost(server)
	if ob := f.obs.Load(); ob != nil {
		ob.revives.Inc()
		ob.trace.Emit("fleet", "chaos.revive", obs.F("rack", int64(rack)), obs.FS("server", server))
	}
	return nil
}

// CrashedServers returns the crashed servers' full names, sorted.
func (f *Fleet) CrashedServers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, f.crashed.Len())
	out = append(out, f.crashed.Names()...)
	sort.Strings(out)
	return out
}

// KillController simulates the loss of one rack's global memory controller
// mid-run: the secondary promotes itself, the state is rebuilt from the
// mirrored log and every gateway borrowing from the rack is re-attached —
// the FailoverRack path, named for what the chaos layer does to trigger it.
func (f *Fleet) KillController(rack int, nowNs int64) error {
	if err := f.FailoverRack(rack, nowNs); err != nil {
		return err
	}
	if ob := f.obs.Load(); ob != nil {
		ob.failovers.Inc()
		ob.trace.Emit("fleet", "chaos.failover", obs.F("rack", int64(rack)))
	}
	return nil
}

// serverFault gates one control-plane operation on a server: crashed servers
// refuse everything, and wake attempts additionally pass through the
// installed FaultInjector. Callers hold no fleet locks.
func (f *Fleet) serverFault(rack int, server string, wake bool) error {
	f.mu.Lock()
	crashed := f.crashed.Has(server)
	fi := f.injector
	f.mu.Unlock()
	if crashed {
		return fmt.Errorf("%w: %s", ErrServerCrashed, server)
	}
	if wake && fi != nil && fi.WakeFails(rack, server) {
		if ob := f.obs.Load(); ob != nil {
			ob.wakeFailures.Inc()
			ob.trace.Emit("fleet", "chaos.wake_failed", obs.F("rack", int64(rack)), obs.FS("server", server))
		}
		return fmt.Errorf("%w: %s", ErrWakeFailed, server)
	}
	return nil
}

// crashedSnapshot returns a copy of the crashed set for one batch's
// planning, nil when nothing is crashed (the common case pays one lock and
// no allocation). The copy shares the fleet's server-name registry; only the
// membership bits are cloned.
func (f *Fleet) crashedSnapshot() *ident.NameSet {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed.Len() == 0 {
		return nil
	}
	return f.crashed.Clone()
}
