// Orchestration demonstrates the ZombieStack cloud-management features on a
// rack: the consolidation loop that parks idle servers in the Sz state, the
// migration protocol that moves only a VM's hot pages and re-points its
// remote buffers, and the transparent fail-over of the global memory
// controller to its mirrored secondary.
//
// Run with:
//
//	go run ./examples/orchestration
package main

import (
	"fmt"
	"log"

	zombieland "repro"
)

func main() {
	rack, err := zombieland.NewRack(zombieland.RackConfig{Servers: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Two lightly loaded VMs spread across the rack.
	if _, err := rack.CreateVM(zombieland.NewVM("api", 4<<30, 2<<30), zombieland.CreateVMOptions{}); err != nil {
		log.Fatal(err)
	}
	if _, err := rack.CreateVM(zombieland.NewVM("batch", 4<<30, 2<<30), zombieland.CreateVMOptions{Strategy: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("VMs placed:", rack.VMs())

	// 1. Consolidation: idle servers are pushed into the Sz zombie state so
	//    their memory keeps serving the rack.
	report, err := rack.ConsolidateOnce()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consolidation pass: migrated=%v pushed-to-Sz=%v woken=%v\n",
		report.Migrated, report.PushedToZombie, report.Woken)
	fmt.Printf("remote memory now available: %.1f GiB\n\n", float64(rack.FreeRemoteMemory())/float64(1<<30))

	// 2. Migration: move a VM with the ZombieStack protocol (hot pages only,
	//    remote buffers re-pointed, not copied).
	guest, err := rack.VM("api")
	if err != nil {
		log.Fatal(err)
	}
	var dest string
	for _, name := range rack.Servers() {
		s, _ := rack.Server(name)
		if name != guest.Host && s.State() == zombieland.S0 {
			dest = name
			break
		}
	}
	if dest != "" {
		res, err := rack.MigrateVM("api", dest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrated %q to %s in %.2fs: %d MiB copied, %d remote buffers re-pointed\n\n",
			"api", dest, res.DurationSeconds(), res.BytesTransferred>>20, res.RemoteOwnershipUpdates)
	}

	// 3. Controller fail-over: silence the primary long enough for the
	//    secondary to promote itself and rebuild the allocation state from
	//    its mirrored operation log.
	rebuilt, err := rack.FailoverController(rack.Now() + 10e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller fail-over complete: secondary promoted, %d servers and %.1f GiB of lent memory recovered\n",
		len(rebuilt.Servers()), float64(rebuilt.FreeMemory())/float64(1<<30))
}
