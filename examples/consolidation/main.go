// Consolidation replays a Google-like datacenter trace against the three
// consolidation systems compared in the paper (Neat, Oasis, ZombieStack) and
// prints the energy saving of each, for the original and the memory-heavy
// trace variants — the Figure 10 experiment at example scale.
//
// Run with:
//
//	go run ./examples/consolidation
//
// A compiled, output-asserted copy of this walk-through lives in the root
// package's examples_test.go (Example_consolidation), so CI pins its
// behaviour.
package main

import (
	"fmt"
	"log"

	zombieland "repro"
)

func main() {
	cfg := zombieland.Fig10Config{Machines: 100, Tasks: 1200, HorizonSec: 8 * 3600, Seed: 7}
	res, err := zombieland.Figure10(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	// Summarise the headline comparison the paper makes: how much better
	// ZombieStack does than Neat and Oasis on the memory-heavy traces.
	for _, machine := range []string{"HP", "Dell"} {
		neat, _ := res.Saving("google-like-modified", machine, "neat")
		oasis, _ := res.Saving("google-like-modified", machine, "oasis")
		zombie, _ := res.Saving("google-like-modified", machine, "zombiestack")
		fmt.Printf("%s servers, memory-heavy traces: ZombieStack saves %.1f%%, %.0f%% more than Neat (%.1f%%) and %.0f%% more than Oasis (%.1f%%)\n",
			machine, zombie, relGain(zombie, neat), neat, relGain(zombie, oasis), oasis)
	}
	fmt.Println("\nSavings are relative to a fleet with no consolidation (every server stays in S0).")
}

func relGain(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}
