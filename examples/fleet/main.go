// The fleet walk-through: federate two racks behind one control plane, make
// one rack a lender (a server in Sz feeds its memory to the rack pool) while
// the other stays dry, then place a memory-hungry VM on the dry rack — the
// fleet borrows the VM's whole remote part from the peer rack, pages over
// the inter-rack fabric at the hop premium, and records the grant in the
// borrow ledger. Run with: go run ./examples/fleet
//
// The same walk-through is compiled and output-asserted in CI as
// Example_fleet in examples_test.go.
package main

import (
	"fmt"

	zombieland "repro"
)

func main() {
	// A fleet of two racks, two servers each, placed and replayed on a
	// two-goroutine worker pool (any pool size gives identical results).
	f, err := zombieland.NewFleet(zombieland.FleetConfig{
		Racks:   2,
		Rack:    zombieland.RackConfig{Servers: 2},
		Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("fleet racks:", f.RackNames())

	// rack-01 lends: one server goes to Sz, its memory joins the pool.
	// rack-00 keeps both servers awake and has no remote memory of its own.
	if err := f.PushToZombie(1, "rack-01/server-01"); err != nil {
		panic(err)
	}
	fmt.Printf("rack-00 free remote: %.1f GiB, rack-01 free remote: %.1f GiB\n",
		gib(f.Rack(0).FreeRemoteMemory()), gib(f.Rack(1).FreeRemoteMemory()))

	// A VM too big for local memory alone lands on the dry rack-00; the
	// fleet pre-reserves the remote part on rack-01 through a gateway agent.
	placements, err := f.PlaceVMs(
		[]zombieland.VM{zombieland.NewVM("hungry", 28<<30, 24<<30)},
		zombieland.CreateVMOptions{})
	if err != nil {
		panic(err)
	}
	p := placements[0]
	if p.Err != "" {
		panic(p.Err)
	}
	fmt.Printf("VM %s on %s: %.1f GiB local + %.1f GiB remote (%.1f GiB borrowed from %s)\n",
		p.VM, p.Host, gib(p.LocalBytes), gib(p.RemoteBytes), gib(p.BorrowedBytes), p.BorrowedFrom)
	for _, b := range f.BorrowLedger() {
		fmt.Printf("ledger: %s borrowed %.1f GiB (%d buffers) from %s for %s\n",
			b.Borrower, gib(b.Bytes), b.Buffers, b.Lender, b.VM)
	}

	// Replaying a workload pages over the borrowed buffers: every one-sided
	// verb traverses the lender's fabric and pays the inter-rack premium.
	results := f.RunWorkloads([]zombieland.FleetWorkloadRequest{
		{VM: "hungry", Kind: zombieland.SparkSQL, Iterations: 2, Seed: 1},
	})
	res := results[0]
	if res.Err != "" {
		panic(res.Err)
	}
	fmt.Printf("workload on %s: %d accesses, %d major faults\n",
		res.Rack, res.Stats.Accesses, res.Stats.MajorFaults)
	lender := f.FabricStats()[1]
	fmt.Printf("lender fabric: %d inter-rack ops, %.1f MiB, %.1f ms premium\n",
		lender.InterRackOps, float64(lender.InterRackBytes)/float64(1<<20), float64(lender.InterRackNs)/1e6)

	// One simulated hour later the zombie still undercuts the awake servers.
	f.AdvanceClock(3600 * 1e9)
	fmt.Printf("fleet energy after 1h: %.0f J across %d racks\n", f.TotalEnergyJoules(), f.Racks())
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }
