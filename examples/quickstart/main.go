// Quickstart: build a four-server rack, push one server into the zombie (Sz)
// state, place a VM whose memory is partly served by the zombie over RDMA,
// run a workload through the hypervisor's RAM Ext paging, and compare the
// energy drawn by the zombie against an idle server.
//
// Run with:
//
//	go run ./examples/quickstart
//
// A compiled, output-asserted copy of this walk-through lives in the root
// package's examples_test.go (Example_quickstart), so CI pins its behaviour.
package main

import (
	"fmt"
	"log"

	zombieland "repro"
)

func main() {
	// 1. Bring up a rack of four Sz-capable servers (16 GiB each).
	rack, err := zombieland.NewRack(zombieland.RackConfig{Servers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rack servers:", rack.Servers())

	// 2. Push server-03 into the zombie state: it suspends like S3 but keeps
	//    its DRAM and RDMA path alive, lending its free memory to the rack.
	if err := rack.PushToZombie("server-03"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server-03 state: %v, rack remote memory: %.1f GiB\n",
		mustServer(rack, "server-03").State(), gib(rack.FreeRemoteMemory()))

	// 3. Create a VM bigger than any single server's free memory. The
	//    zombie-aware scheduler backs half of it with the zombie's memory.
	spec := zombieland.NewVM("webapp", 28<<30, 20<<30)
	guest, err := rack.CreateVM(spec, zombieland.CreateVMOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM %s on %s: %.1f GiB local + %.1f GiB remote\n",
		spec.ID, guest.Host, gib(guest.LocalBytes), gib(guest.RemoteBytes))

	// 4. Run a workload; cold pages are demoted to the zombie's memory with
	//    one-sided RDMA writes and promoted back on demand.
	stats, err := rack.RunWorkload("webapp", zombieland.SparkSQL, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d accesses, %d major faults, %d pages demoted, %.1f ms simulated\n",
		stats.Accesses, stats.MajorFaults, stats.Demotions, stats.TotalNs()/1e6)

	// 5. Account one hour of energy: the zombie draws ~12% of Emax versus
	//    ~52% for an idle-but-awake server (Table 3).
	rack.AdvanceClock(3600 * 1e9)
	for _, rep := range rack.EnergyReportAll() {
		fmt.Printf("%s (%v): %.0f J\n", rep.Server, rep.State, rep.Joules)
	}
}

func mustServer(rack *zombieland.Rack, name string) *zombieland.Server {
	s, err := rack.Server(name)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }
