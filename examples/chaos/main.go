// Chaos walk-through: how much of Zombieland's consolidation saving survives
// an unreliable fleet?
//
// The paper's savings assume servers wake from Sz and resume serving remote
// memory on demand. This example replays the online control plane under
// seeded, deterministic fault schedules — server crashes, failed wakes
// (stuck zombies), controller losses, degraded RDMA fabric and arrival
// bursts — and compares the costed saving against the same loop's fault-free
// run and against the offline oracle re-run under the identical schedule.
//
// Everything is a pure function of the seeds, so the whole report is
// reproducible bit for bit (the mirrored Example_chaos in the repository
// root asserts this exact output).
package main

import (
	"fmt"
	"log"

	zombieland "repro"
)

func main() {
	// A half-scale diurnal trace keeps the walk-through quick: 100 machines,
	// 1200 tasks over 12 hours, seed 42.
	tr, err := zombieland.GenerateTrace(false, 100, 1200, 12*3600, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := zombieland.AutopilotConfig{
		Trace:      tr,
		Machine:    zombieland.HPProfile(),
		ServerSpec: zombieland.DefaultServerSpec(),
		TickSec:    600,
	}

	// The severity axis: no faults, a handful, sustained failures. Same
	// fault seed everywhere, so scenarios differ only in what they inject.
	var plans []*zombieland.ChaosPlan
	for _, name := range zombieland.ChaosScenarioNames() {
		plan, err := zombieland.ChaosScenario(name, tr.HorizonSec, tr.Machines, 7)
		if err != nil {
			log.Fatal(err)
		}
		plans = append(plans, plan)
	}

	cfg.Policy = zombieland.OnlinePolicies(zombieland.ZombieStackPolicy())[1] // hysteresis
	reports, err := zombieland.CompareChaosScenarios(cfg, plans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(zombieland.RenderChaosComparison(reports))

	heavy := reports[len(reports)-1]
	fmt.Printf("under %q: %d crashes, %d stuck zombies, %d controller fail-overs, %.1f GiB re-homed\n",
		heavy.Scenario, heavy.ServerCrashes, heavy.StuckZombies, heavy.ControllerFailovers, heavy.ReHomedGiB)
	fmt.Printf("saving retained: %.2f%% of fault-free (%.2f%% -> %.2f%%), resilience regret %.2f points\n",
		heavy.SavingsRetainedPercent, heavy.FaultFreeSavingPercent, heavy.SavingPercent, heavy.ResilienceRegretPercent)
}
