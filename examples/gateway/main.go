// The serving-layer walk-through: run the zombieland control plane as an
// HTTP gateway on loopback and drive one session's full lifecycle with plain
// requests — create a rack fleet with a zombie lending its DRAM, place a VM
// whose reservation splits local/remote, replay a workload, stream an
// autopilot run's tick telemetry as NDJSON, read the consolidated report and
// tear the fleet down. Run with: go run ./examples/gateway
//
// The same walk-through is compiled and output-asserted in CI as
// Example_gateway in examples_test.go; cmd/fleetd serves the same gateway as
// a standalone daemon.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	zombieland "repro"
)

func main() {
	// The gateway behind a loopback listener — the same handler stack that
	// cmd/fleetd serves, bearer auth included.
	srv := zombieland.NewGateway(zombieland.GatewayConfig{Token: "demo"})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	do := func(method, path, body string) (int, []byte) {
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		req.Header.Set("Authorization", "Bearer demo")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			panic(err)
		}
		return resp.StatusCode, b
	}

	// One rack of three small servers; the tail server suspends into Sz and
	// lends its DRAM to the rack pool.
	var created struct {
		ID        string  `json:"id"`
		Zombies   int     `json:"zombies"`
		RemoteGiB float64 `json:"remote_gib"`
	}
	status, body := do(http.MethodPost, "/v1/fleets",
		`{"racks":1,"servers":3,"mem_gib":2,"workers":1,"zombies_per_rack":1}`)
	if err := json.Unmarshal(body, &created); err != nil {
		panic(err)
	}
	fmt.Printf("create (%d): fleet %s, %d zombie lending %.2f GiB\n",
		status, created.ID, created.Zombies, created.RemoteGiB)

	// A 1.25 GiB reservation against a host with 1 GiB free: the placement
	// splits, and the overflow lives in the zombie's granted buffers.
	var placed struct {
		Placed     int `json:"placed"`
		Placements []struct {
			VM        string  `json:"vm"`
			Host      string  `json:"host"`
			LocalGiB  float64 `json:"local_gib"`
			RemoteGiB float64 `json:"remote_gib"`
		} `json:"placements"`
	}
	status, body = do(http.MethodPost, "/v1/fleets/"+created.ID+"/vms",
		`{"count":1,"gib":1.25,"vcpus":1}`)
	if err := json.Unmarshal(body, &placed); err != nil {
		panic(err)
	}
	p := placed.Placements[0]
	fmt.Printf("place (%d): %s on %s, %.2f GiB local + %.2f GiB remote\n",
		status, p.VM, p.Host, p.LocalGiB, p.RemoteGiB)

	// Replay a workload through the RAM Ext paging path.
	var ran struct {
		Results []struct {
			Kind        string `json:"kind"`
			Accesses    uint64 `json:"accesses"`
			MajorFaults uint64 `json:"major_faults"`
		} `json:"results"`
	}
	status, body = do(http.MethodPost, "/v1/fleets/"+created.ID+"/workloads",
		fmt.Sprintf(`{"items":[{"vm":%q,"kind":"micro-benchmark","iterations":1,"seed":7}]}`, p.VM))
	if err := json.Unmarshal(body, &ran); err != nil {
		panic(err)
	}
	fmt.Printf("workload (%d): %s, %d accesses, %d major faults\n",
		status, ran.Results[0].Kind, ran.Results[0].Accesses, ran.Results[0].MajorFaults)

	// Start an autopilot run and follow its tick telemetry as NDJSON: the
	// buffered events replay first, then one terminal "done" line with the
	// regret vs the offline oracle.
	status, _ = do(http.MethodPost, "/v1/fleets/"+created.ID+"/autopilot",
		`{"machines":10,"tasks":60,"hours":1,"seed":7,"tick_sec":600}`)
	fmt.Printf("autopilot (%d): started\n", status)

	req, err := http.NewRequest(http.MethodGet, base+"/v1/fleets/"+created.ID+"/autopilot/events", nil)
	if err != nil {
		panic(err)
	}
	req.Header.Set("Authorization", "Bearer demo")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	ticks := 0
	var done struct {
		Policy        string  `json:"policy"`
		RegretPercent float64 `json:"regret_percent"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			panic(err)
		}
		if line.Type == "done" {
			if err := json.Unmarshal(sc.Bytes(), &done); err != nil {
				panic(err)
			}
			break
		}
		ticks++
	}
	resp.Body.Close()
	fmt.Printf("events: %d ticks, then done — %s regret %.2f%% vs the oracle\n",
		ticks, done.Policy, done.RegretPercent)

	// The consolidated report: live fleet state plus the run's outcome.
	var report struct {
		Fleet struct {
			VMs       int     `json:"vms"`
			RemoteGiB float64 `json:"remote_gib"`
		} `json:"fleet"`
		Autopilot struct {
			Running bool `json:"running"`
			Ticks   int  `json:"ticks"`
		} `json:"autopilot"`
	}
	status, body = do(http.MethodGet, "/v1/fleets/"+created.ID+"/report", "")
	if err := json.Unmarshal(body, &report); err != nil {
		panic(err)
	}
	fmt.Printf("report (%d): %d VM, %.2f GiB remote still free, autopilot running=%v over %d ticks\n",
		status, report.Fleet.VMs, report.Fleet.RemoteGiB, report.Autopilot.Running, report.Autopilot.Ticks)

	status, _ = do(http.MethodDelete, "/v1/fleets/"+created.ID, "")
	fmt.Printf("delete (%d): session retired\n", status)
}
