// Rackdisagg compares the two remote-memory functions of the paper on the
// macro workloads: hypervisor-managed RAM Extension versus an explicit swap
// device (backed by remote RAM, a local SSD and a local HDD), sweeping the
// fraction of the VM's memory that stays local. It reproduces the shape of
// Tables 1 and 2 at example scale.
//
// Run with:
//
//	go run ./examples/rackdisagg
package main

import (
	"fmt"
	"log"

	zombieland "repro"
)

func main() {
	fmt.Println("RAM Ext vs explicit swap devices (penalty vs all-local execution)")
	fmt.Println()

	table1, err := zombieland.Table1(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table1.Render())

	table2, err := zombieland.Table2(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table2.Render())

	// Highlight the paper's 50% rule: at half local memory, every macro
	// workload stays under a usable penalty with RAM Ext, while swap devices
	// (even remote-RAM-backed ones) cost noticeably more.
	fmt.Println("At 50% local memory:")
	for _, k := range []zombieland.Workload{zombieland.Elasticsearch, zombieland.DataCaching, zombieland.SparkSQL} {
		re, _ := table2.Penalty(k, 50, "v1-RE")
		esd, _ := table2.Penalty(k, 50, "v2-ESD")
		hdd, _ := table2.Penalty(k, 50, "v2-LSSD")
		fmt.Printf("  %-15s RAM Ext %6.2f%%   remote swap %7.2f%%   HDD swap %9.2f%%\n", k, re, esd, hdd)
	}
}
