// The data-plane walk-through: place a memory-hungry VM whose pages
// half-live on servers suspended in Sz, then push real bytes through its
// remote-memory data plane — fill the address space to expose the
// local/remote split, replay a workload as actual page reads and writes,
// round-trip a message through a zombie's granted buffer, and finally crash
// the serving zombie, re-home its live pages and read the bytes back intact.
// Run with: go run ./examples/memplane
//
// The same walk-through is compiled and output-asserted in CI as
// Example_memplane in examples_test.go.
package main

import (
	"fmt"

	zombieland "repro"
)

func main() {
	// One rack, three servers: the first hosts the VM, the other two suspend
	// into Sz and lend their DRAM to the rack pool.
	f, err := zombieland.NewFleet(zombieland.FleetConfig{
		Racks:   1,
		Rack:    zombieland.RackConfig{Servers: 3},
		Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	for _, server := range []string{"rack-00/server-01", "rack-00/server-02"} {
		if err := f.PushToZombie(0, server); err != nil {
			panic(err)
		}
	}

	// The VM reserves more than its host can serve locally, so the placement
	// splits it: part local, part in buffers granted from the zombies.
	placements, err := f.PlaceVMs(
		[]zombieland.VM{zombieland.NewVM("vm", 28<<30, 24<<30)},
		zombieland.CreateVMOptions{})
	if err != nil {
		panic(err)
	}
	if placements[0].Err != "" {
		panic(placements[0].Err)
	}

	// The data plane is sized from the placement: pages up to the local
	// fraction live in the host's arena, the rest overflow into the buffers
	// the placement granted on the Sz servers. Filling the whole address
	// space makes the split visible.
	p, err := f.MemplaneOf("vm")
	if err != nil {
		panic(err)
	}
	page := make([]byte, p.PageSize())
	for addr := int64(0); addr < 16<<20; addr += p.PageSize() {
		for i := range page {
			page[i] = byte(addr >> 12)
		}
		if _, _, err := p.Write(addr, page); err != nil {
			panic(err)
		}
	}
	as := p.AllocStats()
	fmt.Printf("plane: %d local frames + %d remote frames in %d granted buffers\n",
		as.LocalFrames, as.RemoteFrames, as.BuffersGranted)

	// DataBytes switches a workload replay from the paging simulation to the
	// data plane: the access stream runs as real page-sized reads and writes.
	results := f.RunWorkloads([]zombieland.FleetWorkloadRequest{
		{VM: "vm", Kind: zombieland.MicroBench, Iterations: 1, Seed: 7, DataBytes: 16 << 20},
	})
	if results[0].Err != "" {
		panic(results[0].Err)
	}
	data := results[0].Data
	fmt.Printf("replay: %d page ops, %d remote, %.1f MiB across the fabric\n",
		data.LocalOps+data.RemoteOps, data.RemoteOps,
		float64(data.RemoteBytesRead+data.RemoteBytesWritten)/(1<<20))

	// A direct round-trip: the write overflows the local arena, so the bytes
	// land in (and come back out of) a granted buffer on an Sz server.
	msg := []byte("zombie memory serves bytes")
	addr := int64(15) << 20
	if _, _, err := p.Write(addr, msg); err != nil {
		panic(err)
	}
	got := make([]byte, len(msg))
	if _, _, err := p.Read(addr, got); err != nil {
		panic(err)
	}
	fmt.Printf("round-trip: %q\n", got)

	// Crash the serving zombie: traffic times out for real until the live
	// pages are re-homed onto the healthy hosts.
	if err := f.CrashServer(0, "rack-00/server-01"); err != nil {
		panic(err)
	}
	rep, err := f.RehomeServerMemory(0, "rack-00/server-01")
	if err != nil {
		panic(err)
	}
	fmt.Printf("re-homed: %d pages, %.1f MiB\n", rep.Pages, float64(rep.Bytes)/(1<<20))
	if _, _, err := p.Read(addr, got); err != nil {
		panic(err)
	}
	fmt.Printf("after crash: %q\n", got)
}
