// Migration compares vanilla pre-copy live migration with the ZombieStack
// protocol, which copies only the hot pages held in the source host's local
// memory and re-points the remote buffers instead of moving them — the
// Figure 9 experiment.
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	zombieland "repro"
)

func main() {
	res, err := zombieland.Figure9()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("Observations:")
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	fmt.Printf("  - vanilla migration is nearly flat in WSS (%.1fs at %.0f%% vs %.1fs at %.0f%%): the pre-copy\n",
		first.VanillaSec, first.WSSRatio*100, last.VanillaSec, last.WSSRatio*100)
	fmt.Println("    rounds always cover the VM's full reservation;")
	fmt.Printf("  - ZombieStack grows with the WSS (%.1fs -> %.1fs) because only the hot local pages move,\n",
		first.ZombieSec, last.ZombieSec)
	fmt.Println("    and the VM's remote memory needs no migration at all (ownership pointers are updated).")
}
