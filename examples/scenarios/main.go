// Scenario-engine walk-through: workload families, the streaming trace
// importer and the policy×scenario matrix.
//
// The paper evaluates on two Google-like traces. This example makes workload
// shape an axis instead: a seeded family generates a flash-crowd scenario,
// two families compose into one mixed workload with disjoint ID namespaces,
// the trace round-trips through the record-at-a-time gzip importer (the path
// that lets traces bigger than RAM replay), and a small policy×scenario
// matrix replays two scenario packs under two online policies with chaos
// injected.
//
// Everything is a pure function of the seeds, so the whole report is
// reproducible bit for bit (the mirrored Example_scenarios in the repository
// root asserts this exact output).
package main

import (
	"bytes"
	"fmt"
	"log"

	zombieland "repro"
)

func main() {
	params := zombieland.FamilyParams{
		Machines: 20, HorizonSec: 2 * 3600, Tasks: 200, Seed: 42,
	}

	// A workload family is a seeded generator: same params, same trace.
	tr, err := zombieland.GenerateFamily("flashcrowd", params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flashcrowd: %d tasks on %d machines over %dh\n",
		len(tr.Tasks), tr.Machines, tr.HorizonSec/3600)

	// Compose splits the task budget across families and renumbers task and
	// job IDs into disjoint ranges — a composite replays like a native trace.
	fams := zombieland.WorkloadFamilies()
	mixed, err := zombieland.ComposeFamilies("web-batch", fams[0], fams[3]).Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compose(%s, %s): %d tasks, IDs dense in 0..%d\n",
		fams[0].Name(), fams[3].Name(), len(mixed.Tasks), len(mixed.Tasks)-1)

	// The importer streams .csv/.csv.gz record at a time (gzip is sniffed
	// from the magic bytes) and derives the fleet size and horizon from the
	// workload itself.
	var buf bytes.Buffer
	if err := tr.EncodeCSV(&buf, true); err != nil {
		log.Fatal(err)
	}
	imported, err := zombieland.ImportTrace(&buf, zombieland.TraceImportOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported: %d tasks, derived fleet of %d machines\n",
		len(imported.Tasks), imported.Machines)

	// The policy×scenario matrix replays every pack under every online
	// policy with chaos injected; the result is bit-identical across runs
	// and worker counts.
	packs, err := zombieland.ScenarioFamilyPacks(zombieland.FamilyParams{
		Machines: 20, HorizonSec: 2 * 3600, Tasks: 120, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := zombieland.RunScenarioMatrix(zombieland.ScenarioMatrixConfig{
		Packs:     packs[:2], // diurnal and flashcrowd
		Policies:  []string{"reactive", "ewma"},
		ChaosSeed: 42,
		Workers:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range m.Cells {
		fmt.Printf("%s/%s: oracle %.1f%%, online %.1f%%, retained %.1f%%\n",
			c.Scenario, c.Policy, c.Report.OracleSavingPercent,
			c.Report.FaultFreeSavingPercent, c.Report.SavingsRetainedPercent)
	}
}
