// The online walk-through: run the autonomic control plane over the
// canonical diurnal trace's streaming arrival feed — admitting tasks as they
// arrive and re-planning consolidation every five minutes without knowing
// the future — under each bundled online policy (reactive threshold,
// hysteresis watermarks, predictive EWMA), and compare the costed savings
// against the offline dcsim oracle on the same trace: the regret of causal
// decision-making. Run with: go run ./examples/online
//
// The same walk-through is compiled and output-asserted in CI as
// Example_online in examples_test.go.
package main

import (
	"fmt"

	zombieland "repro"
)

func main() {
	// The canonical diurnal trace: 200 machines, 3000 tasks, one day, seed 42.
	tr, err := zombieland.GenerateTrace(false, 0, 0, 0, 0)
	if err != nil {
		panic(err)
	}

	// One config, three fresh online policies over the ZombieStack planner;
	// every run also replays the offline oracle for the regret comparison.
	cfg := zombieland.AutopilotConfig{
		Trace:      tr,
		Machine:    zombieland.HPProfile(),
		ServerSpec: zombieland.DefaultServerSpec(),
		TickSec:    300,
	}
	reports, err := zombieland.CompareOnlinePolicies(cfg, zombieland.OnlinePolicies(zombieland.ZombieStackPolicy()))
	if err != nil {
		panic(err)
	}
	fmt.Println(zombieland.RenderRegretComparison(reports))

	for _, r := range reports {
		fmt.Printf("%s: %.2f%% online vs %.2f%% oracle -> %.2f points of regret (%d emergency wakes)\n",
			r.Policy, r.Online.SavingPercent, r.Oracle.SavingPercent, r.RegretPercent, r.Online.EmergencyWakes)
	}
}
