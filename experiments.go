package zombieland

import (
	"fmt"

	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/migration"
	"repro/internal/pagepolicy"
	"repro/internal/swapdev"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file contains the experiment runners: one function per table or figure
// of the paper's evaluation (plus the motivation figures). Each returns a
// structured result and can render itself as an aligned text table, which is
// what the cmd tools print and the benchmarks execute.

// ---------------------------------------------------------------- Figure 1 --

// Fig1Result is the energy-vs-utilization curve of Figure 1.
type Fig1Result struct {
	Machine string
	Points  []energy.UtilizationPoint
	Ladder  map[string]float64
}

// Figure1 samples the actual and ideal energy-proportionality curves for the
// named machine profile ("HP" or "Dell").
func Figure1(machine string, points int) (Fig1Result, error) {
	m, err := energy.ProfileByName(machine)
	if err != nil {
		return Fig1Result{}, err
	}
	return Fig1Result{
		Machine: machine,
		Points:  energy.UtilizationCurve(m, points),
		Ladder:  energy.SleepStateLadder(m),
	}, nil
}

// Render formats the result as the figure's two series.
func (r Fig1Result) Render() string {
	actual := &metrics.Series{Name: "actual(%Emax)"}
	ideal := &metrics.Series{Name: "ideal(%Emax)"}
	for _, p := range r.Points {
		actual.Add(p.Utilization*100, p.Actual*100)
		ideal.Add(p.Utilization*100, p.Ideal*100)
	}
	out := metrics.RenderSeries("Figure 1 — energy vs utilization ("+r.Machine+")", "%util", actual, ideal)
	t := metrics.NewTable("Sleep-state floors (%Emax)", "state", "power")
	for _, s := range []string{"S0idle", "Sz", "S3", "S4", "S5"} {
		t.AddRowf(s, r.Ladder[s]*100)
	}
	return out + "\n" + t.String()
}

// ------------------------------------------------------------- Figures 2-3 --

// TrendResult carries one of the motivation trends (Figure 2 or 3).
type TrendResult struct {
	Title  string
	Points []energy.TrendPoint
}

// Figure2 returns the AWS memory:CPU demand trend.
func Figure2() TrendResult {
	return TrendResult{Title: "Figure 2 — AWS m<n>.<size> memory:CPU demand ratio", Points: energy.AWSDemandTrend()}
}

// Figure3 returns the server memory:CPU supply trend.
func Figure3() TrendResult {
	return TrendResult{Title: "Figure 3 — normalized server memory:CPU supply ratio", Points: energy.ServerSupplyTrend()}
}

// Render formats the trend as a table.
func (r TrendResult) Render() string {
	t := metrics.NewTable(r.Title, "year", "ratio")
	for _, p := range r.Points {
		t.AddRowf(p.Year, p.Ratio)
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 4 --

// Fig4Result is the rack-architecture energy comparison of Figure 4.
type Fig4Result struct {
	Energies map[energy.RackArchitecture]float64
}

// Figure4 evaluates the paper's three-server scenario under the four rack
// architectures.
func Figure4() Fig4Result {
	return Fig4Result{Energies: energy.DefaultRackScenario().Figure4()}
}

// Render formats the result.
func (r Fig4Result) Render() string {
	t := metrics.NewTable("Figure 4 — rack energy by architecture (x Emax)", "architecture", "energy")
	for _, a := range energy.AllArchitectures() {
		t.AddRowf(a.String(), r.Energies[a])
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 8 --

// Fig8Row is one (policy, local fraction) cell of Figure 8.
type Fig8Row struct {
	Policy               string
	LocalPercent         float64
	ExecTimeMs           float64
	MajorFaults          uint64
	PolicyCyclesPerFault float64
}

// Fig8Result is the replacement-policy comparison of Figure 8.
type Fig8Result struct {
	Rows []Fig8Row
}

// Figure8 runs the micro-benchmark under FIFO, Clock and Mixed for every
// local-memory percentage of the paper's sweep (20..100%).
func Figure8(seed int64) (Fig8Result, error) {
	runner := workload.NewRunner()
	runner.Seed = seed
	machine := PaperVM()
	var res Fig8Result
	fractions := []float64{0.2, 0.4, 0.5, 0.6, 0.8, 1.0}
	for _, name := range pagepolicy.Names() {
		for _, frac := range fractions {
			pol, err := pagepolicy.New(name, pagepolicy.DefaultCost())
			if err != nil {
				return Fig8Result{}, err
			}
			r, err := runner.RunRAMExt(workload.MicroBench, machine, frac, pol, nil)
			if err != nil {
				return Fig8Result{}, err
			}
			res.Rows = append(res.Rows, Fig8Row{
				Policy:               name,
				LocalPercent:         frac * 100,
				ExecTimeMs:           r.ExecTimeNs / 1e6,
				MajorFaults:          r.MajorFaults,
				PolicyCyclesPerFault: r.PolicyCyclesPerFault,
			})
		}
	}
	return res, nil
}

// Render formats the three panels of Figure 8.
func (r Fig8Result) Render() string {
	t := metrics.NewTable("Figure 8 — replacement policies (micro-benchmark)",
		"policy", "%local", "exec(ms)", "#faults", "cycles/fault")
	for _, row := range r.Rows {
		t.AddRowf(row.Policy, row.LocalPercent, row.ExecTimeMs, row.MajorFaults, row.PolicyCyclesPerFault)
	}
	return t.String()
}

// BestPolicy returns the policy with the lowest total execution time across
// the sweep (the paper finds Mixed).
func (r Fig8Result) BestPolicy() string {
	totals := map[string]float64{}
	for _, row := range r.Rows {
		totals[row.Policy] += row.ExecTimeMs
	}
	best, bestV := "", 0.0
	for _, name := range pagepolicy.Names() {
		v, ok := totals[name]
		if !ok {
			continue
		}
		if best == "" || v < bestV {
			best, bestV = name, v
		}
	}
	return best
}

// ----------------------------------------------------------------- Table 1 --

// Table1Cell is one workload x local-fraction penalty.
type Table1Cell struct {
	Workload       Workload
	LocalPercent   float64
	PenaltyPercent float64
}

// Table1Result is the RAM Ext penalty study of Table 1.
type Table1Result struct {
	Cells []Table1Cell
}

// Table1 measures the RAM Ext penalty of every workload at every local-memory
// fraction of the paper's sweep.
func Table1(seed int64) (Table1Result, error) {
	runner := workload.NewRunner()
	runner.Seed = seed
	machine := PaperVM()
	var res Table1Result
	for _, frac := range workload.LocalFractions() {
		for _, k := range workload.AllKinds() {
			r, err := runner.RunRAMExt(k, machine, frac, nil, nil)
			if err != nil {
				return Table1Result{}, err
			}
			res.Cells = append(res.Cells, Table1Cell{Workload: k, LocalPercent: frac * 100, PenaltyPercent: r.PenaltyPercent})
		}
	}
	return res, nil
}

// Penalty returns the penalty of a workload at a local percentage.
func (r Table1Result) Penalty(k Workload, localPercent float64) (float64, bool) {
	for _, c := range r.Cells {
		if c.Workload == k && c.LocalPercent == localPercent {
			return c.PenaltyPercent, true
		}
	}
	return 0, false
}

// Render formats the table with one row per local fraction, matching the
// paper's layout.
func (r Table1Result) Render() string {
	headers := []string{"%local"}
	for _, k := range workload.AllKinds() {
		headers = append(headers, k.String())
	}
	t := metrics.NewTable("Table 1 — RAM Ext performance penalty (%)", headers...)
	for _, frac := range workload.LocalFractions() {
		row := []string{metrics.FormatFloat(frac * 100)}
		for _, k := range workload.AllKinds() {
			p, _ := r.Penalty(k, frac*100)
			row = append(row, metrics.FormatPercent(p))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// ----------------------------------------------------------------- Table 2 --

// Table2Cell is one (workload, local fraction, configuration) penalty.
type Table2Cell struct {
	Workload       Workload
	LocalPercent   float64
	Configuration  string // "v1-RE", "v2-ESD", "v2-LFSD", "v2-LSSD"
	PenaltyPercent float64
}

// Table2Result is the RAM Ext versus swap-technology comparison of Table 2.
type Table2Result struct {
	Cells []Table2Cell
}

// Table2Configurations lists the compared configurations in the paper's
// column order.
func Table2Configurations() []string { return []string{"v1-RE", "v2-ESD", "v2-LFSD", "v2-LSSD"} }

// Table2 compares RAM Ext against explicit swap devices backed by remote RAM,
// a local SSD and a local HDD, for every workload and local fraction.
func Table2(seed int64) (Table2Result, error) {
	runner := workload.NewRunner()
	runner.Seed = seed
	machine := PaperVM()
	var res Table2Result
	devices := map[string]swapdev.Kind{
		"v2-ESD":  swapdev.RemoteRAM,
		"v2-LFSD": swapdev.LocalSSD,
		"v2-LSSD": swapdev.LocalHDD,
	}
	for _, k := range workload.AllKinds() {
		for _, frac := range workload.LocalFractions() {
			re, err := runner.RunRAMExt(k, machine, frac, nil, nil)
			if err != nil {
				return Table2Result{}, err
			}
			res.Cells = append(res.Cells, Table2Cell{Workload: k, LocalPercent: frac * 100, Configuration: "v1-RE", PenaltyPercent: re.PenaltyPercent})
			for _, cfgName := range []string{"v2-ESD", "v2-LFSD", "v2-LSSD"} {
				esd, err := runner.RunExplicitSD(k, machine, frac, devices[cfgName])
				if err != nil {
					return Table2Result{}, err
				}
				res.Cells = append(res.Cells, Table2Cell{Workload: k, LocalPercent: frac * 100, Configuration: cfgName, PenaltyPercent: esd.PenaltyPercent})
			}
		}
	}
	return res, nil
}

// Penalty returns one cell of the table.
func (r Table2Result) Penalty(k Workload, localPercent float64, configuration string) (float64, bool) {
	for _, c := range r.Cells {
		if c.Workload == k && c.LocalPercent == localPercent && c.Configuration == configuration {
			return c.PenaltyPercent, true
		}
	}
	return 0, false
}

// Render formats one sub-table per workload, matching the paper's layout.
func (r Table2Result) Render() string {
	out := ""
	for _, k := range workload.AllKinds() {
		headers := append([]string{"%local"}, Table2Configurations()...)
		t := metrics.NewTable(fmt.Sprintf("Table 2 — %s penalty (%%) by swap technology", k), headers...)
		for _, frac := range workload.LocalFractions() {
			row := []string{metrics.FormatFloat(frac * 100)}
			for _, cfgName := range Table2Configurations() {
				p, _ := r.Penalty(k, frac*100, cfgName)
				row = append(row, metrics.FormatPercent(p))
			}
			t.AddRow(row...)
		}
		out += t.String() + "\n"
	}
	return out
}

// ---------------------------------------------------------------- Figure 9 --

// Fig9Result is the migration-time comparison of Figure 9.
type Fig9Result struct {
	Points []migration.Figure9Point
}

// Figure9 sweeps the WSS ratio and compares vanilla pre-copy migration with
// the ZombieStack protocol (50% of the VM memory local).
func Figure9() (Fig9Result, error) {
	pts, err := migration.Figure9(PaperVM(), []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}, LocalMemoryRule)
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9Result{Points: pts}, nil
}

// Render formats the two series.
func (r Fig9Result) Render() string {
	native := &metrics.Series{Name: "native(s)"}
	zombie := &metrics.Series{Name: "zombiestack(s)"}
	for _, p := range r.Points {
		native.Add(p.WSSRatio*100, p.VanillaSec)
		zombie.Add(p.WSSRatio*100, p.ZombieSec)
	}
	return metrics.RenderSeries("Figure 9 — VM migration time vs WSS", "%wss", native, zombie)
}

// ----------------------------------------------------------------- Table 3 --

// Table3Result is the per-state energy measurement table (plus Sz estimate).
type Table3Result struct {
	Configs  []energy.Config
	Machines []string
	Rows     map[string][]float64
}

// Table3 returns the measured per-configuration power fractions of both
// testbed machines and the Sz estimate of Equation 1.
func Table3() Table3Result {
	res := Table3Result{Configs: energy.AllConfigs(), Rows: make(map[string][]float64)}
	for _, m := range energy.Profiles() {
		res.Machines = append(res.Machines, m.Name)
		res.Rows[m.Name] = m.Table3Row()
	}
	return res
}

// Render formats the table in the paper's layout.
func (r Table3Result) Render() string {
	headers := []string{"machine"}
	for _, c := range r.Configs {
		headers = append(headers, string(c))
	}
	t := metrics.NewTable("Table 3 — energy by configuration (% of max)", headers...)
	for _, m := range r.Machines {
		row := []string{m}
		for _, v := range r.Rows[m] {
			row = append(row, metrics.FormatFloat(v))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// --------------------------------------------------------------- Figure 10 --

// Fig10Cell is one (trace, machine, policy) energy saving.
type Fig10Cell struct {
	Trace         string
	Machine       string
	Policy        string
	SavingPercent float64
}

// Fig10Result is the datacenter-scale energy comparison of Figure 10.
type Fig10Result struct {
	Cells []Fig10Cell
	// TransitionCosts reports whether the runs charged transition events.
	TransitionCosts bool
	// RackPriced reports whether epoch energy was integrated through the
	// rack model's ledger (Fig10Config.RackPricing).
	RackPriced bool
}

// Fig10Config bounds the size of the Figure 10 simulation.
type Fig10Config struct {
	Machines   int
	Tasks      int
	HorizonSec int64
	Seed       int64
	// Workers shards each simulation's per-epoch accounting across that many
	// goroutines (see dcsim.Config.Workers); results are identical to a
	// sequential run.
	Workers int
	// TransitionCosts charges the ACPI suspend/wake, migration-drain and
	// remote-memory churn events of every consolidation epoch (see
	// dcsim.Config.TransitionCosts). Off reproduces the paper's optimistic
	// steady-state bound; on reports the faithful costed savings.
	TransitionCosts bool
	// RackPricing integrates epoch energy through the rack model's energy
	// ledger instead of the abstract power tables (dcsim.Config.RackPricing).
	RackPricing bool
}

// DefaultFig10Config returns a configuration sized to run in seconds while
// preserving the comparison's shape (the paper's full traces cover 12,583
// machines over 29 days).
func DefaultFig10Config() Fig10Config {
	return Fig10Config{Machines: 120, Tasks: 1500, HorizonSec: 12 * 3600, Seed: 42}
}

// Figure10 runs the Neat / Oasis / ZombieStack comparison on the original and
// modified Google-like traces for both machine profiles.
func Figure10(cfg Fig10Config) (Fig10Result, error) {
	if cfg.Machines <= 0 {
		workers, transitions, rackPricing := cfg.Workers, cfg.TransitionCosts, cfg.RackPricing
		cfg = DefaultFig10Config()
		cfg.Workers = workers
		cfg.TransitionCosts = transitions
		cfg.RackPricing = rackPricing
	}
	res := Fig10Result{TransitionCosts: cfg.TransitionCosts, RackPriced: cfg.RackPricing}
	for _, modified := range []bool{false, true} {
		genCfg := trace.DefaultConfig()
		if modified {
			genCfg = trace.ModifiedConfig()
		}
		genCfg.Machines = cfg.Machines
		genCfg.Tasks = cfg.Tasks
		genCfg.HorizonSec = cfg.HorizonSec
		genCfg.Seed = cfg.Seed
		tr, err := trace.Generate(genCfg)
		if err != nil {
			return Fig10Result{}, err
		}
		cmp, err := dcsim.CompareOpts(tr, energy.Profiles(), consolidation.DefaultServerSpec(),
			dcsim.CompareOptions{Workers: cfg.Workers, TransitionCosts: cfg.TransitionCosts, RackPricing: cfg.RackPricing})
		if err != nil {
			return Fig10Result{}, err
		}
		for _, r := range cmp.Results {
			res.Cells = append(res.Cells, Fig10Cell{
				Trace:         tr.Name,
				Machine:       r.Machine,
				Policy:        r.Policy,
				SavingPercent: r.SavingPercent,
			})
		}
	}
	return res, nil
}

// Saving returns one cell of the figure.
func (r Fig10Result) Saving(traceName, machine, policy string) (float64, bool) {
	for _, c := range r.Cells {
		if c.Trace == traceName && c.Machine == machine && c.Policy == policy {
			return c.SavingPercent, true
		}
	}
	return 0, false
}

// Render formats the two panels of Figure 10.
func (r Fig10Result) Render() string {
	model := "steady state"
	if r.TransitionCosts {
		model = "with transition costs"
	}
	if r.RackPriced {
		model += ", rack-ledger priced"
	}
	out := ""
	for _, traceName := range []string{"google-like", "google-like-modified"} {
		t := metrics.NewTable("Figure 10 — % energy saving ("+traceName+", "+model+")", "machine", "neat", "oasis", "zombiestack")
		for _, m := range []string{"HP", "Dell"} {
			row := []string{m}
			for _, p := range []string{"neat", "oasis", "zombiestack"} {
				v, _ := r.Saving(traceName, m, p)
				row = append(row, metrics.FormatFloat(v))
			}
			t.AddRow(row...)
		}
		out += t.String() + "\n"
	}
	return out
}
