package zombieland

import (
	"testing"

	"repro/internal/acpi"
)

// testRackConfig returns a small, fast rack configuration for the public API
// tests.
func testRackConfig(servers int) RackConfig {
	board := DefaultBoardSpec()
	board.MemoryBytes = 1 << 30
	return RackConfig{
		Servers:           servers,
		Board:             board,
		BufferSize:        16 << 20,
		HostReservedBytes: 128 << 20,
	}
}

func TestPublicRackLifecycle(t *testing.T) {
	rack, err := NewRack(testRackConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rack.Servers()) != 3 {
		t.Fatalf("servers = %v", rack.Servers())
	}
	// Push one server to the zombie state and place a VM that needs its
	// memory.
	if err := rack.PushToZombie("server-02"); err != nil {
		t.Fatal(err)
	}
	srv, err := rack.Server("server-02")
	if err != nil {
		t.Fatal(err)
	}
	if srv.State() != Sz {
		t.Fatalf("state = %v, want Sz", srv.State())
	}
	guest, err := rack.CreateVM(NewVM("app", 3<<29, 1<<30), CreateVMOptions{SimPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if guest.RemoteBytes == 0 {
		t.Error("the VM should use remote memory from the zombie")
	}
	stats, err := rack.RunWorkload("app", SparkSQL, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses == 0 {
		t.Error("workload should have run")
	}
	rack.AdvanceClock(60e9)
	if rack.TotalEnergyJoules() <= 0 {
		t.Error("energy accounting should be live")
	}
	if err := rack.DestroyVM("app"); err != nil {
		t.Fatal(err)
	}
	if err := rack.Wake("server-02"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicConstantsAndHelpers(t *testing.T) {
	if Sz != acpi.Sz || S0 != acpi.S0 {
		t.Error("sleep state re-exports broken")
	}
	if LocalMemoryRule != 0.5 {
		t.Errorf("LocalMemoryRule = %v, want 0.5", LocalMemoryRule)
	}
	if len(Workloads()) != 4 || len(PolicyNames()) != 3 {
		t.Error("workload/policy listings wrong")
	}
	if len(LocalFractions()) != 5 {
		t.Error("local fractions wrong")
	}
	v := PaperVM()
	if v.ReservedBytes != 7<<30 {
		t.Error("paper VM wrong")
	}
	if len(MachineProfiles()) != 2 {
		t.Error("machine profiles wrong")
	}
	if HPProfile().Name != "HP" || DellProfile().Name != "Dell" {
		t.Error("profile names wrong")
	}
	if len(ConsolidationPolicies()) != 3 {
		t.Error("consolidation policies wrong")
	}
	board := DefaultBoardSpec()
	if !board.SplitPowerDomains {
		t.Error("default board should be Sz capable")
	}
}

func TestGenerateTraceVariants(t *testing.T) {
	orig, err := GenerateTrace(false, 50, 400, 3600, 7)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := GenerateTrace(true, 50, 400, 3600, 7)
	if err != nil {
		t.Fatal(err)
	}
	so := orig.ComputeStats()
	sm := mod.ComputeStats()
	if sm.MemToCPURatio <= so.MemToCPURatio*1.5 {
		t.Errorf("modified trace should be memory-heavier: %.2f vs %.2f", sm.MemToCPURatio, so.MemToCPURatio)
	}
	// Defaults kick in for zero arguments.
	if _, err := GenerateTrace(false, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}
