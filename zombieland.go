// Package zombieland is a library-level reproduction of "Welcome to
// Zombieland: Practical and Energy-efficient Memory Disaggregation in a
// Datacenter" (Nitu et al., EuroSys 2018).
//
// The paper disaggregates the CPU/memory couple at the power-supply-domain
// level: a new ACPI sleep state, Sz ("zombie"), suspends a server like S3
// while keeping its DRAM and RDMA NIC path in active idle, so the memory of a
// suspended server stays remotely accessible. On top of Sz the paper builds a
// rack-level remote memory system (a global memory controller, per-server
// remote memory manager agents, hypervisor-managed RAM extension and explicit
// remote swap devices) and ZombieStack, an OpenStack-based cloud layer
// (zombie-aware placement, consolidation and migration).
//
// This package is the public facade. It re-exports the building blocks from
// the internal packages and provides the experiment runners that regenerate
// every table and figure of the paper's evaluation:
//
//   - Rack: a simulated rack wired exactly like the paper's Figure 7
//     (ACPI platforms with Sz, an RDMA fabric, controllers, agents, paging);
//   - Fleet: many racks federated behind one control plane — sharded
//     placement and workload execution, cross-rack remote memory borrowing
//     over an inter-rack fabric premium, per-rack controller fail-over;
//   - VM, Workloads, replacement policies: the pieces of the rack-level
//     experiments (Figure 8, Tables 1 and 2, Figure 9);
//   - EnergyModel: the per-state power model, the Sz estimation of Equation 1
//     and the rack-architecture comparison (Figures 1-4, Table 3);
//   - Datacenter simulation: trace generation plus the Neat / Oasis /
//     ZombieStack comparison of Figure 10.
//
// See README.md for the architecture map of the internal packages and the
// quickstart of the command-line tools.
package zombieland

import (
	"io"
	"net/http"

	"repro/internal/acpi"
	"repro/internal/autopilot"
	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/hypervisor"
	"repro/internal/memplane"
	"repro/internal/migration"
	"repro/internal/obs"
	"repro/internal/pagepolicy"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/swapdev"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Rack is a simulated rack of general-purpose servers with the zombie
// technology (Figure 7). Create one with NewRack.
type Rack = core.Rack

// RackConfig parameterises NewRack.
type RackConfig = core.Config

// Server is one server of a Rack.
type Server = core.Server

// GuestVM is a VM placed on a Rack.
type GuestVM = core.GuestVM

// CreateVMOptions tunes Rack.CreateVM.
type CreateVMOptions = core.CreateVMOptions

// VM describes a virtual machine (reserved memory, working set, vCPUs).
type VM = vm.VM

// SleepState is an ACPI global sleep state (S0..S5 plus Sz).
type SleepState = acpi.SleepState

// The ACPI sleep states, including the paper's zombie state Sz.
const (
	S0 = acpi.S0
	S3 = acpi.S3
	S4 = acpi.S4
	S5 = acpi.S5
	Sz = acpi.Sz
)

// BoardSpec describes a server board (sockets, memory, split power domains).
type BoardSpec = acpi.BoardSpec

// MachineProfile is a per-machine power model (Table 3).
type MachineProfile = energy.MachineProfile

// Workload identifies one of the paper's evaluated workloads.
type Workload = workload.Kind

// The evaluated workloads.
const (
	MicroBench    = workload.MicroBench
	DataCaching   = workload.DataCaching
	Elasticsearch = workload.Elasticsearch
	SparkSQL      = workload.SparkSQL
)

// SwapDeviceKind identifies a swap technology of Table 2.
type SwapDeviceKind = swapdev.Kind

// The swap technologies compared in Table 2.
const (
	RemoteRAMSwap = swapdev.RemoteRAM
	LocalSSDSwap  = swapdev.LocalSSD
	LocalHDDSwap  = swapdev.LocalHDD
)

// PagingStats carries the paging counters of a VM (faults, policy cost,
// simulated time).
type PagingStats = hypervisor.Stats

// Trace is a datacenter task trace (Google-cluster-like).
type Trace = trace.Trace

// ConsolidationPolicy plans fleet-level consolidation (Neat, Oasis,
// ZombieStack).
type ConsolidationPolicy = consolidation.Policy

// MigrationResult describes one VM migration.
type MigrationResult = migration.Result

// ConsolidationReport describes one pass of the rack-level consolidation
// loop (Rack.ConsolidateOnce).
type ConsolidationReport = core.ConsolidationReport

// RemoteSwapDevice is a guest-visible swap device backed by remote memory
// buffers (the Explicit SD function), created with Rack.CreateSwapDevice.
type RemoteSwapDevice = core.RemoteSwapDevice

// Fleet federates many racks behind one control plane: sharded placement
// and workload execution on a worker pool, cross-rack remote memory
// borrowing priced with the inter-rack RDMA premium, and per-rack
// controller fail-over. Create one with NewFleet.
type Fleet = fleet.Fleet

// FleetConfig parameterises NewFleet (racks × per-rack template × workers).
type FleetConfig = fleet.Config

// FleetPlacement is the fleet's per-VM placement outcome, including how
// much memory was borrowed across racks and from whom.
type FleetPlacement = fleet.Placement

// FleetBorrow is one entry of the fleet's cross-rack borrow ledger.
type FleetBorrow = fleet.Borrow

// FleetWorkloadRequest asks the fleet to replay a workload against one VM.
type FleetWorkloadRequest = fleet.WorkloadRequest

// FleetWorkloadResult is the outcome of one fleet workload replay.
type FleetWorkloadResult = fleet.WorkloadResult

// NewFleet builds a multi-rack fleet from a per-rack template configuration.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// Memplane is a VM's remote-memory data plane: an address-translating page
// table over a local arena plus frames carved out of memctl-granted buffers,
// so reads and writes past the local fraction move real bytes through zombie
// servers' DRAM. Obtain one from Fleet.MemplaneOf / Rack.MemplaneOf (wired
// into the VM's placement), or build a standalone one with NewMemplane.
type Memplane = memplane.Plane

// MemplaneConfig parameterises NewMemplane.
type MemplaneConfig = memplane.Config

// MemplaneStats summarises a data plane's traffic: op and byte counters split
// local/remote, the simulated charges, and fault counters.
type MemplaneStats = memplane.Stats

// MemplaneRehomeReport summarises one re-homing pass: how many live pages
// were migrated off a crashed host, their bytes, and the charged time.
type MemplaneRehomeReport = memplane.RehomeReport

// ErrRemoteTimeout is returned by data-plane operations against a crashed
// host (and by chaos-injected remote faults).
var ErrRemoteTimeout = memplane.ErrRemoteTimeout

// NewMemplane builds a standalone data plane from an explicit configuration
// (local arena size, page size, granted buffers or a growth agent).
func NewMemplane(cfg MemplaneConfig) (*Memplane, error) { return memplane.New(cfg) }

// NewRack builds a rack of servers wired with the zombie technology.
func NewRack(cfg RackConfig) (*Rack, error) { return core.NewRack(cfg) }

// NewVM returns a VM descriptor with the paper's defaults (8 vCPUs, 4 KiB
// pages).
func NewVM(id string, reservedBytes, wssBytes int64) VM {
	return vm.New(id, reservedBytes, wssBytes)
}

// DefaultBoardSpec returns a board comparable to the paper's testbed machines
// with split CPU/memory power domains (Sz capable).
func DefaultBoardSpec() BoardSpec { return acpi.DefaultBoardSpec() }

// HPProfile returns the HP machine power profile of Table 3.
func HPProfile() *MachineProfile { return energy.HPProfile() }

// DellProfile returns the Dell machine power profile of Table 3.
func DellProfile() *MachineProfile { return energy.DellProfile() }

// MachineProfiles returns both testbed profiles with their Sz estimates.
func MachineProfiles() []*MachineProfile { return energy.Profiles() }

// PolicyNames lists the page replacement policies of Figure 8.
func PolicyNames() []string { return pagepolicy.Names() }

// Workloads lists the evaluated workloads in the paper's order.
func Workloads() []Workload { return workload.AllKinds() }

// LocalFractions lists the local-memory fractions of Tables 1 and 2.
func LocalFractions() []float64 { return workload.LocalFractions() }

// PaperVM returns the VM used by the paper's rack-level experiments
// (7 GiB reserved, 6 GiB working set, 8 vCPUs).
func PaperVM() VM { return workload.PaperVM() }

// GenerateTrace builds a synthetic Google-like trace. Set modified to true
// for the paper's memory-heavy variant (memory demand doubled).
func GenerateTrace(modified bool, machines, tasks int, horizonSec int64, seed int64) (*Trace, error) {
	cfg := trace.DefaultConfig()
	if modified {
		cfg = trace.ModifiedConfig()
	}
	if machines > 0 {
		cfg.Machines = machines
	}
	if tasks > 0 {
		cfg.Tasks = tasks
	}
	if horizonSec > 0 {
		cfg.HorizonSec = horizonSec
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return trace.Generate(cfg)
}

// WorkloadFamily is a seeded, deterministic workload generator: a named
// scenario shape (diurnal, flashcrowd, serverless, mlbatch, heavytail) that
// builds a full Trace from one envelope of parameters.
type WorkloadFamily = trace.Family

// FamilyParams is the envelope shared by every workload family: fleet size,
// horizon, task budget and seed.
type FamilyParams = trace.FamilyParams

// GenerateFamily builds a trace from the named workload family ("mix"
// composes all of them into one trace).
func GenerateFamily(name string, p FamilyParams) (*Trace, error) {
	return trace.GenerateFamily(name, p)
}

// WorkloadFamilies returns the bundled families in canonical order.
func WorkloadFamilies() []WorkloadFamily { return trace.Families() }

// WorkloadFamilyNames lists the valid GenerateFamily names, including "mix".
func WorkloadFamilyNames() []string { return trace.FamilyNames() }

// ComposeFamilies merges several families into one: the task budget is split
// across the parts and the resulting traces are overlaid with disjoint task
// and job ID namespaces.
func ComposeFamilies(name string, parts ...WorkloadFamily) WorkloadFamily {
	return trace.Compose(name, parts...)
}

// OverlayTraces merges already-generated traces into one workload,
// renumbering task and job IDs into disjoint ranges.
func OverlayTraces(name string, parts ...*Trace) (*Trace, error) {
	return trace.Overlay(name, parts...)
}

// TraceImportOptions tunes ImportTrace / ImportTraceFile (schema, name,
// fleet-size and horizon overrides).
type TraceImportOptions = trace.ImportOptions

// TraceSchema maps one external CSV record layout onto tasks; see
// ClusterTraceSchema for the bundled public-cluster-trace adapter.
type TraceSchema = trace.Schema

// ImportTrace streams a .csv or .csv.gz task trace from r record at a time
// (gzip is sniffed from the magic bytes, rows validate as they decode) and
// returns the assembled trace with the fleet size and horizon derived from
// the workload unless overridden.
func ImportTrace(r io.Reader, opts TraceImportOptions) (*Trace, error) {
	return trace.Import(r, opts)
}

// ImportTraceFile imports a trace from a file path; see ImportTrace.
func ImportTraceFile(path string, opts TraceImportOptions) (*Trace, error) {
	return trace.ImportFile(path, opts)
}

// ClusterTraceSchema decodes the public cluster-trace CSV layout
// (vm_id,tenant_id,created_sec,deleted_sec,core_count,memory_gb,
// avg_cpu_pct,avg_mem_pct) instead of the native one.
func ClusterTraceSchema() TraceSchema { return trace.ClusterSchema() }

// ScenarioPack is one column of the policy×scenario matrix: a named,
// ready-to-replay workload.
type ScenarioPack = scenario.Pack

// ScenarioMatrixConfig parameterises RunScenarioMatrix.
type ScenarioMatrixConfig = scenario.MatrixConfig

// ScenarioMatrix is the policy×scenario grid of chaos reports; Render
// formats it as the golden artifact.
type ScenarioMatrix = scenario.Matrix

// ScenarioFamilyPacks builds one matrix column per bundled workload family.
func ScenarioFamilyPacks(p FamilyParams) ([]ScenarioPack, error) {
	return scenario.FamilyPacks(p)
}

// DefaultScenarioMatrixConfig crosses all families with the online policy
// roster under light chaos — the golden-artifact grid.
func DefaultScenarioMatrixConfig() (ScenarioMatrixConfig, error) {
	return scenario.DefaultMatrixConfig()
}

// RunScenarioMatrix replays every scenario pack under every online policy
// with chaos injected and returns the matrix of resilience reports; the
// result is bit-identical across runs and worker counts.
func RunScenarioMatrix(cfg ScenarioMatrixConfig) (*ScenarioMatrix, error) {
	return scenario.Run(cfg)
}

// ConsolidationPolicies returns the Figure 10 contenders: Neat, Oasis and
// ZombieStack.
func ConsolidationPolicies() []ConsolidationPolicy {
	return []ConsolidationPolicy{
		consolidation.NewNeat(),
		consolidation.NewOasis(),
		consolidation.NewZombieStack(),
	}
}

// ZombieStackPolicy returns the paper's zombie-aware consolidation planner.
func ZombieStackPolicy() ConsolidationPolicy { return consolidation.NewZombieStack() }

// ServerSpec is the per-server capacity the consolidation planners and the
// online control plane size postures against.
type ServerSpec = consolidation.ServerSpec

// DefaultServerSpec returns the paper's server shape (8 cores, 16 GiB).
func DefaultServerSpec() ServerSpec { return consolidation.DefaultServerSpec() }

// LocalMemoryRule is the minimum fraction of a VM's memory that ZombieStack
// keeps local (the 50% rule of Section 5.1).
const LocalMemoryRule = placement.LocalMemoryRule

// TraceStream is an incremental iterator over a trace's arrival and
// departure events in causal order — the feed the online control plane
// consumes. Create one with NewTraceStream.
type TraceStream = trace.Stream

// NewTraceStream builds the streaming arrival feed of a trace.
func NewTraceStream(tr *Trace) *TraceStream { return trace.NewStream(tr) }

// AutopilotConfig parameterises one online control-plane run: the trace
// whose arrival feed to consume, the online policy, the hardware, and the
// re-planning tick.
type AutopilotConfig = autopilot.Config

// AutopilotResult summarises one online run with the same costed accounting
// as the offline simulator.
type AutopilotResult = autopilot.Result

// OnlinePolicy decides fleet postures online, seeing only the present and
// the past (reactive threshold, hysteresis watermarks, predictive EWMA).
type OnlinePolicy = autopilot.Policy

// RegretReport compares an online policy's costed saving against the
// offline dcsim oracle on the same trace.
type RegretReport = autopilot.Report

// AutopilotFleetExecutor mirrors the online control loop's decisions onto a
// live Fleet as real per-server ACPI transitions. Create one with
// NewAutopilotFleetExecutor and set it as AutopilotConfig.Executor.
type AutopilotFleetExecutor = autopilot.FleetExecutor

// RunAutopilot executes the online control loop over the trace's arrival
// feed.
func RunAutopilot(cfg AutopilotConfig) (AutopilotResult, error) { return autopilot.Run(cfg) }

// AutopilotRegret runs the online loop and the offline oracle on the same
// configuration and returns the regret comparison.
func AutopilotRegret(cfg AutopilotConfig) (RegretReport, error) { return autopilot.Regret(cfg) }

// CompareOnlinePolicies runs the regret comparison for every given policy on
// the same configuration.
func CompareOnlinePolicies(cfg AutopilotConfig, policies []OnlinePolicy) ([]RegretReport, error) {
	return autopilot.CompareOnline(cfg, policies)
}

// OnlinePolicies returns a fresh instance of every bundled online policy
// over the given base planner (reactive, hysteresis, ewma).
func OnlinePolicies(base ConsolidationPolicy) []OnlinePolicy { return autopilot.Policies(base) }

// RenderRegretComparison formats a set of regret reports as one table, a row
// per policy.
func RenderRegretComparison(reports []RegretReport) string {
	return autopilot.RenderComparison(reports)
}

// NewAutopilotFleetExecutor builds the executor that applies online postures
// to a live fleet; the fleet's server count must match the trace's machine
// count.
func NewAutopilotFleetExecutor(f *Fleet) *AutopilotFleetExecutor {
	return autopilot.NewFleetExecutor(f)
}

// ChaosPlan is a seeded, reproducible fault schedule: server crashes, failed
// S3->S0 wakes (stuck zombies), controller losses, RDMA-fabric degradation
// windows and trace perturbations, injected deterministically through the
// fleet, autopilot and dcsim layers. Build one with NewChaosPlan or
// ChaosScenario.
type ChaosPlan = chaos.Plan

// ChaosPlanConfig parameterises NewChaosPlan (fault counts, windows, seed).
type ChaosPlanConfig = chaos.PlanConfig

// ChaosFault is one scheduled failure event of a ChaosPlan.
type ChaosFault = chaos.Fault

// ChaosReport is the resilience report of one faulted online run: savings
// retained vs the fault-free run, SLO violations, wasted transitions,
// re-homed remote memory, and the oracle re-run under the same schedule.
type ChaosReport = chaos.Report

// FleetFaultInjector force-fails individual control-plane operations on a
// live Fleet (install with Fleet.SetFaultInjector).
type FleetFaultInjector = fleet.FaultInjector

// NewChaosPlan generates a reproducible fault schedule from the config.
func NewChaosPlan(cfg ChaosPlanConfig) (*ChaosPlan, error) { return chaos.New(cfg) }

// ChaosScenario builds one of the bundled severity presets ("off", "light",
// "heavy") for a given fleet size and horizon.
func ChaosScenario(name string, horizonSec int64, machines int, seed int64) (*ChaosPlan, error) {
	return chaos.Scenario(name, horizonSec, machines, seed)
}

// ChaosScenarioNames lists the bundled chaos scenarios in severity order.
func ChaosScenarioNames() []string { return chaos.ScenarioNames() }

// RunChaos replays one online configuration under a fault plan and returns
// the resilience report (faulted vs fault-free vs the oracle under the same
// schedule).
func RunChaos(cfg AutopilotConfig, plan *ChaosPlan) (ChaosReport, error) {
	return autopilot.RunChaos(cfg, plan)
}

// CompareChaosScenarios runs the same online configuration under every given
// fault plan, in order — how much of the paper's saving survives each
// severity level.
func CompareChaosScenarios(cfg AutopilotConfig, plans []*ChaosPlan) ([]ChaosReport, error) {
	return autopilot.CompareChaos(cfg, plans)
}

// RenderChaosComparison formats a set of chaos reports as one table, a row
// per scenario.
func RenderChaosComparison(reports []ChaosReport) string {
	return chaos.RenderComparison(reports)
}

// GatewayConfig parameterises the HTTP control-plane gateway: bearer token,
// per-tenant quota, session idle TTL and registry/fleet-size caps.
type GatewayConfig = gateway.Config

// Gateway is the long-running HTTP control plane ("zombieland as a
// service"): concurrent isolated fleet sessions behind a logging / panic
// recovery / auth / rate-limit middleware stack, exposing fleet creation,
// placement, workload replay, streaming autopilot runs, chaos scenarios and
// savings/regret reports. Create one with NewGateway (cmd/fleetd is the
// thin server wrapper).
type Gateway = gateway.Server

// GatewayLoadConfig parameterises the gateway load generator; see
// RunGatewayLoad and cmd/fleetload.
type GatewayLoadConfig = gateway.LoadConfig

// GatewayLoadReport is the load generator's outcome: throughput, p50/p99/max
// latency and per-endpoint breakdown — the BENCH_gateway.json payload
// (schema v1).
type GatewayLoadReport = gateway.LoadReport

// NewGateway assembles the gateway; Handler() serves it on any mux or
// httptest server, ListenAndServe on a TCP address.
func NewGateway(cfg GatewayConfig) *Gateway { return gateway.New(cfg) }

// NewGatewayHandler is the one-call form: the routed handler behind the full
// middleware stack. The background session evictor keeps running for the
// handler's lifetime.
func NewGatewayHandler(cfg GatewayConfig) http.Handler { return gateway.New(cfg).Handler() }

// ServeGateway serves the gateway on addr until the listener fails.
func ServeGateway(addr string, cfg GatewayConfig) error {
	return gateway.New(cfg).ListenAndServe(addr)
}

// RunGatewayLoad hammers a gateway with the seeded mixed endpoint profile
// and returns the throughput/latency report.
func RunGatewayLoad(cfg GatewayLoadConfig) (GatewayLoadReport, error) { return gateway.RunLoad(cfg) }

// Obs bundles the observability layer: an atomic metrics registry and a
// deterministic ring-buffered trace. Attach one to a Fleet (SetObs), an
// AutopilotConfig or a MemplaneConfig via their Obs fields; a nil bundle
// keeps every hot path allocation-free. The gateway builds its own registry
// and serves it at GET /metrics.
type Obs = obs.Obs

// ObsOptions configures NewObs: trace ring capacity and the clock stamping
// emitted events (use ObsStepClock for byte-stable exports).
type ObsOptions = obs.Options

// ObsSnapshot is a point-in-time copy of a registry's values, embedded in
// gateway session reports.
type ObsSnapshot = obs.Snapshot

// NewObs builds an enabled observability bundle.
func NewObs(opts ObsOptions) *Obs { return obs.New(opts) }

// ObsStepClock returns a deterministic clock yielding 1, 2, 3, ... — the
// fake time source that makes trace exports byte-stable across runs.
func ObsStepClock() obs.Clock { return obs.StepClock() }
