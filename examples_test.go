package zombieland_test

// Testable versions of the examples/ walk-throughs: each Example* function
// mirrors the corresponding examples/<name>/main.go and asserts its exact
// output, so the example code is compiled and its behaviour pinned by
// `go test` instead of rotting alongside the library. Everything in the
// library is deterministic, which is what makes exact-output examples
// possible.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	zombieland "repro"
)

// Example_quickstart is examples/quickstart as a compiled, asserted test:
// build a four-server rack, push one server into Sz, place a VM whose memory
// is partly served by the zombie over RDMA, run a workload through RAM Ext
// paging, and compare the zombie's energy draw against awake servers.
func Example_quickstart() {
	rack, err := zombieland.NewRack(zombieland.RackConfig{Servers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("rack servers:", rack.Servers())

	if err := rack.PushToZombie("server-03"); err != nil {
		panic(err)
	}
	server03, err := rack.Server("server-03")
	if err != nil {
		panic(err)
	}
	fmt.Printf("server-03 state: %v, rack remote memory: %.1f GiB\n",
		server03.State(), gib(rack.FreeRemoteMemory()))

	spec := zombieland.NewVM("webapp", 28<<30, 20<<30)
	guest, err := rack.CreateVM(spec, zombieland.CreateVMOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("VM %s on %s: %.1f GiB local + %.1f GiB remote\n",
		spec.ID, guest.Host, gib(guest.LocalBytes), gib(guest.RemoteBytes))

	stats, err := rack.RunWorkload("webapp", zombieland.SparkSQL, 2, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %d accesses, %d major faults, %d pages demoted, %.1f ms simulated\n",
		stats.Accesses, stats.MajorFaults, stats.Demotions, stats.TotalNs()/1e6)

	rack.AdvanceClock(3600 * 1e9)
	for _, rep := range rack.EnergyReportAll() {
		fmt.Printf("%s (%v): %.0f J\n", rep.Server, rep.State, rep.Joules)
	}

	// Output:
	// rack servers: [server-00 server-01 server-02 server-03]
	// server-03 state: Sz, rack remote memory: 15.0 GiB
	// VM webapp on server-00: 15.0 GiB local + 13.0 GiB remote
	// workload: 32768 accesses, 1435 major faults, 1435 pages demoted, 45.8 ms simulated
	// server-00 (S0): 432000 J
	// server-01 (S0): 225504 J
	// server-02 (S0): 225504 J
	// server-03 (Sz): 54734 J
}

// Example_consolidation is examples/consolidation as a compiled, asserted
// test: the Figure 10 experiment at example scale, summarising how much
// better ZombieStack does than Neat and Oasis on the memory-heavy traces.
func Example_consolidation() {
	cfg := zombieland.Fig10Config{Machines: 100, Tasks: 1200, HorizonSec: 8 * 3600, Seed: 7}
	res, err := zombieland.Figure10(cfg)
	if err != nil {
		panic(err)
	}
	// The aligned tables pad every cell; trim the line ends so the asserted
	// output below is stable under editors that strip trailing whitespace.
	printTrimmed(res.Render())
	fmt.Println()

	for _, machine := range []string{"HP", "Dell"} {
		neat, _ := res.Saving("google-like-modified", machine, "neat")
		oasis, _ := res.Saving("google-like-modified", machine, "oasis")
		zombie, _ := res.Saving("google-like-modified", machine, "zombiestack")
		fmt.Printf("%s servers, memory-heavy traces: ZombieStack saves %.1f%%, %.0f%% more than Neat (%.1f%%) and %.0f%% more than Oasis (%.1f%%)\n",
			machine, zombie, relGain(zombie, neat), neat, relGain(zombie, oasis), oasis)
	}
	fmt.Println("\nSavings are relative to a fleet with no consolidation (every server stays in S0).")

	// Output:
	// Figure 10 — % energy saving (google-like, steady state)
	// machine  neat   oasis  zombiestack
	// -------  -----  -----  -----------
	// HP       35.85  37.39  47.87
	// Dell     34.92  35.33  46.27
	//
	// Figure 10 — % energy saving (google-like-modified, steady state)
	// machine  neat   oasis  zombiestack
	// -------  -----  -----  -----------
	// HP       11.01  12.50  34.91
	// Dell     10.73  11.24  33.26
	//
	// HP servers, memory-heavy traces: ZombieStack saves 34.9%, 217% more than Neat (11.0%) and 179% more than Oasis (12.5%)
	// Dell servers, memory-heavy traces: ZombieStack saves 33.3%, 210% more than Neat (10.7%) and 196% more than Oasis (11.2%)
	//
	// Savings are relative to a fleet with no consolidation (every server stays in S0).
}

// Example_fleet is examples/fleet as a compiled, asserted test: federate two
// racks, push a server of rack-01 into Sz (the lender), place a
// memory-hungry VM on the dry rack-00 — the fleet borrows the whole remote
// part from rack-01 — then page over the inter-rack fabric at the hop
// premium and account a simulated hour of energy.
func Example_fleet() {
	f, err := zombieland.NewFleet(zombieland.FleetConfig{
		Racks:   2,
		Rack:    zombieland.RackConfig{Servers: 2},
		Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("fleet racks:", f.RackNames())

	if err := f.PushToZombie(1, "rack-01/server-01"); err != nil {
		panic(err)
	}
	fmt.Printf("rack-00 free remote: %.1f GiB, rack-01 free remote: %.1f GiB\n",
		gib(f.Rack(0).FreeRemoteMemory()), gib(f.Rack(1).FreeRemoteMemory()))

	placements, err := f.PlaceVMs(
		[]zombieland.VM{zombieland.NewVM("hungry", 28<<30, 24<<30)},
		zombieland.CreateVMOptions{})
	if err != nil {
		panic(err)
	}
	p := placements[0]
	if p.Err != "" {
		panic(p.Err)
	}
	fmt.Printf("VM %s on %s: %.1f GiB local + %.1f GiB remote (%.1f GiB borrowed from %s)\n",
		p.VM, p.Host, gib(p.LocalBytes), gib(p.RemoteBytes), gib(p.BorrowedBytes), p.BorrowedFrom)
	for _, b := range f.BorrowLedger() {
		fmt.Printf("ledger: %s borrowed %.1f GiB (%d buffers) from %s for %s\n",
			b.Borrower, gib(b.Bytes), b.Buffers, b.Lender, b.VM)
	}

	results := f.RunWorkloads([]zombieland.FleetWorkloadRequest{
		{VM: "hungry", Kind: zombieland.SparkSQL, Iterations: 2, Seed: 1},
	})
	res := results[0]
	if res.Err != "" {
		panic(res.Err)
	}
	fmt.Printf("workload on %s: %d accesses, %d major faults\n",
		res.Rack, res.Stats.Accesses, res.Stats.MajorFaults)
	lender := f.FabricStats()[1]
	fmt.Printf("lender fabric: %d inter-rack ops, %.1f MiB, %.1f ms premium\n",
		lender.InterRackOps, float64(lender.InterRackBytes)/float64(1<<20), float64(lender.InterRackNs)/1e6)

	f.AdvanceClock(3600 * 1e9)
	fmt.Printf("fleet energy after 1h: %.0f J across %d racks\n", f.TotalEnergyJoules(), f.Racks())

	// Output:
	// fleet racks: [rack-00 rack-01]
	// rack-00 free remote: 0.0 GiB, rack-01 free remote: 15.0 GiB
	// VM hungry on rack-00/server-00: 15.0 GiB local + 13.0 GiB remote (13.0 GiB borrowed from rack-01)
	// ledger: rack-00 borrowed 13.0 GiB (208 buffers) from rack-01 for hungry
	// workload on rack-00: 32768 accesses, 1435 major faults
	// lender fabric: 1958 inter-rack ops, 7.6 MiB, 9.8 ms premium
	// fleet energy after 1h: 937742 J across 2 racks
}

// Example_online is examples/online as a compiled, asserted test: run the
// online autonomic control plane (streaming arrivals, periodic re-planning)
// under each bundled policy and compare the costed savings against the
// offline dcsim oracle on the same trace — the regret of not knowing the
// future. Everything is seed-deterministic, so the whole report is pinned.
func Example_online() {
	// The canonical diurnal trace: 200 machines, 3000 tasks, one day, seed 42.
	tr, err := zombieland.GenerateTrace(false, 0, 0, 0, 0)
	if err != nil {
		panic(err)
	}
	cfg := zombieland.AutopilotConfig{
		Trace:      tr,
		Machine:    zombieland.HPProfile(),
		ServerSpec: zombieland.DefaultServerSpec(),
		TickSec:    300,
	}
	reports, err := zombieland.CompareOnlinePolicies(cfg, zombieland.OnlinePolicies(zombieland.ZombieStackPolicy()))
	if err != nil {
		panic(err)
	}
	printTrimmed(zombieland.RenderRegretComparison(reports))
	fmt.Println()
	for _, r := range reports {
		fmt.Printf("%s: %.2f%% online vs %.2f%% oracle -> %.2f points of regret (%d emergency wakes)\n",
			r.Policy, r.Online.SavingPercent, r.Oracle.SavingPercent, r.RegretPercent, r.Online.EmergencyWakes)
	}

	// Output:
	// Online policies vs the offline oracle
	// policy      planner      online-saving-%  oracle-saving-%  regret-pts  acpi-events  oracle-events  emergency-wakes
	// ----------  -----------  ---------------  ---------------  ----------  -----------  -------------  ---------------
	// reactive    zombiestack  40.09            43.46            3.37        1047         1062           10
	// hysteresis  zombiestack  40.34            43.46            3.12        819          1062           57
	// ewma        zombiestack  41.33            43.46            2.13        1151         1062           17
	//
	// reactive: 40.09% online vs 43.46% oracle -> 3.37 points of regret (10 emergency wakes)
	// hysteresis: 40.34% online vs 43.46% oracle -> 3.12 points of regret (57 emergency wakes)
	// ewma: 41.33% online vs 43.46% oracle -> 2.13 points of regret (17 emergency wakes)
}

// Example_chaos is examples/chaos as a compiled, asserted test: replay the
// online control plane under seeded fault schedules of rising severity —
// server crashes, failed wakes (stuck zombies), controller losses, degraded
// fabric, arrival bursts — and report how much of the fault-free saving each
// scenario retains, alongside the oracle re-run under the identical
// schedule. The fault plans are pure functions of their seeds, so the whole
// resilience report is pinned bit for bit.
func Example_chaos() {
	tr, err := zombieland.GenerateTrace(false, 100, 1200, 12*3600, 42)
	if err != nil {
		panic(err)
	}
	cfg := zombieland.AutopilotConfig{
		Trace:      tr,
		Machine:    zombieland.HPProfile(),
		ServerSpec: zombieland.DefaultServerSpec(),
		TickSec:    600,
	}
	var plans []*zombieland.ChaosPlan
	for _, name := range zombieland.ChaosScenarioNames() {
		plan, err := zombieland.ChaosScenario(name, tr.HorizonSec, tr.Machines, 7)
		if err != nil {
			panic(err)
		}
		plans = append(plans, plan)
	}
	cfg.Policy = zombieland.OnlinePolicies(zombieland.ZombieStackPolicy())[1] // hysteresis
	reports, err := zombieland.CompareChaosScenarios(cfg, plans)
	if err != nil {
		panic(err)
	}
	printTrimmed(zombieland.RenderChaosComparison(reports))
	fmt.Println()
	heavy := reports[len(reports)-1]
	fmt.Printf("under %q: %d crashes, %d stuck zombies, %d controller fail-overs, %.1f GiB re-homed\n",
		heavy.Scenario, heavy.ServerCrashes, heavy.StuckZombies, heavy.ControllerFailovers, heavy.ReHomedGiB)
	fmt.Printf("saving retained: %.2f%% of fault-free (%.2f%% -> %.2f%%), resilience regret %.2f points\n",
		heavy.SavingsRetainedPercent, heavy.FaultFreeSavingPercent, heavy.SavingPercent, heavy.ResilienceRegretPercent)

	// Output:
	// Chaos scenarios — savings retained under faults
	// scenario  policy      saving-%  retained-%  oracle-faulted-%  slo-viol  wasted-acpi  rehomed-gib  crashes  stuck  failovers
	// --------  ----------  --------  ----------  ----------------  --------  -----------  -----------  -------  -----  ---------
	// off       hysteresis  45.52     100         47.41             0         0            0            0        0      0
	// light     hysteresis  45.25     99.42       47.23             0         1            15.87        2        1      1
	// heavy     hysteresis  44.32     97.36       46.40             0         10           63.45        12       10     3
	//
	// under "heavy": 12 crashes, 10 stuck zombies, 3 controller fail-overs, 63.4 GiB re-homed
	// saving retained: 97.36% of fault-free (45.52% -> 44.32%), resilience regret 2.09 points
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }

// printTrimmed prints the text with the trailing whitespace of every line and
// any trailing blank lines removed (example output cannot express runs of
// blank lines — go/doc collapses them).
func printTrimmed(s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Println(strings.TrimRight(line, " "))
	}
}

func relGain(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

// Example_memplane is examples/memplane as a compiled, asserted test: place
// a memory-hungry VM whose pages half-live on Sz servers, push real bytes
// through its remote-memory data plane (the workload's DataBytes mode), do a
// direct write/read round-trip through a zombie's granted buffer, then crash
// the serving zombie, re-home its live pages and prove the bytes survived.
func Example_memplane() {
	f, err := zombieland.NewFleet(zombieland.FleetConfig{
		Racks:   1,
		Rack:    zombieland.RackConfig{Servers: 3},
		Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	for _, server := range []string{"rack-00/server-01", "rack-00/server-02"} {
		if err := f.PushToZombie(0, server); err != nil {
			panic(err)
		}
	}
	placements, err := f.PlaceVMs(
		[]zombieland.VM{zombieland.NewVM("vm", 28<<30, 24<<30)},
		zombieland.CreateVMOptions{})
	if err != nil {
		panic(err)
	}
	if placements[0].Err != "" {
		panic(placements[0].Err)
	}

	// The data plane is sized from the placement: pages up to the local
	// fraction live in the host's arena, the rest overflow into the buffers
	// the placement granted on the Sz servers. Filling the whole address
	// space makes the split visible.
	p, err := f.MemplaneOf("vm")
	if err != nil {
		panic(err)
	}
	page := make([]byte, p.PageSize())
	for addr := int64(0); addr < 16<<20; addr += p.PageSize() {
		for i := range page {
			page[i] = byte(addr >> 12)
		}
		if _, _, err := p.Write(addr, page); err != nil {
			panic(err)
		}
	}
	as := p.AllocStats()
	fmt.Printf("plane: %d local frames + %d remote frames in %d granted buffers\n",
		as.LocalFrames, as.RemoteFrames, as.BuffersGranted)

	// DataBytes switches a workload replay from the paging simulation to the
	// data plane: the access stream runs as real page-sized reads and writes.
	results := f.RunWorkloads([]zombieland.FleetWorkloadRequest{
		{VM: "vm", Kind: zombieland.MicroBench, Iterations: 1, Seed: 7, DataBytes: 16 << 20},
	})
	if results[0].Err != "" {
		panic(results[0].Err)
	}
	data := results[0].Data
	fmt.Printf("replay: %d page ops, %d remote, %.1f MiB across the fabric\n",
		data.LocalOps+data.RemoteOps, data.RemoteOps,
		float64(data.RemoteBytesRead+data.RemoteBytesWritten)/(1<<20))

	// A direct round-trip: the write overflows the local arena, so the bytes
	// land in (and come back out of) a granted buffer on an Sz server.
	msg := []byte("zombie memory serves bytes")
	addr := int64(15) << 20
	if _, _, err := p.Write(addr, msg); err != nil {
		panic(err)
	}
	got := make([]byte, len(msg))
	if _, _, err := p.Read(addr, got); err != nil {
		panic(err)
	}
	fmt.Printf("round-trip: %q\n", got)

	// Crash the serving zombie: traffic times out for real until the live
	// pages are re-homed onto the healthy hosts.
	if err := f.CrashServer(0, "rack-00/server-01"); err != nil {
		panic(err)
	}
	rep, err := f.RehomeServerMemory(0, "rack-00/server-01")
	if err != nil {
		panic(err)
	}
	fmt.Printf("re-homed: %d pages, %.1f MiB\n", rep.Pages, float64(rep.Bytes)/(1<<20))
	if _, _, err := p.Read(addr, got); err != nil {
		panic(err)
	}
	fmt.Printf("after crash: %q\n", got)

	// Output:
	// plane: 2194 local frames + 1902 remote frames in 1 granted buffers
	// replay: 20480 page ops, 2045 remote, 8.0 MiB across the fabric
	// round-trip: "zombie memory serves bytes"
	// re-homed: 1902 pages, 7.4 MiB
	// after crash: "zombie memory serves bytes"
}

// Example_gateway is examples/gateway as a compiled, asserted test: the HTTP
// control plane on loopback, one session's full lifecycle — create a fleet
// with a zombie lending DRAM, place a split VM, replay a workload, stream an
// autopilot run's NDJSON telemetry, read the report, tear down.
func Example_gateway() {
	srv := zombieland.NewGateway(zombieland.GatewayConfig{Token: "demo"})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	do := func(method, path, body string) (int, []byte) {
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		req.Header.Set("Authorization", "Bearer demo")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			panic(err)
		}
		return resp.StatusCode, b
	}

	var created struct {
		ID        string  `json:"id"`
		Zombies   int     `json:"zombies"`
		RemoteGiB float64 `json:"remote_gib"`
	}
	status, body := do(http.MethodPost, "/v1/fleets",
		`{"racks":1,"servers":3,"mem_gib":2,"workers":1,"zombies_per_rack":1}`)
	if err := json.Unmarshal(body, &created); err != nil {
		panic(err)
	}
	fmt.Printf("create (%d): fleet %s, %d zombie lending %.2f GiB\n",
		status, created.ID, created.Zombies, created.RemoteGiB)

	var placed struct {
		Placed     int `json:"placed"`
		Placements []struct {
			VM        string  `json:"vm"`
			Host      string  `json:"host"`
			LocalGiB  float64 `json:"local_gib"`
			RemoteGiB float64 `json:"remote_gib"`
		} `json:"placements"`
	}
	status, body = do(http.MethodPost, "/v1/fleets/"+created.ID+"/vms",
		`{"count":1,"gib":1.25,"vcpus":1}`)
	if err := json.Unmarshal(body, &placed); err != nil {
		panic(err)
	}
	p := placed.Placements[0]
	fmt.Printf("place (%d): %s on %s, %.2f GiB local + %.2f GiB remote\n",
		status, p.VM, p.Host, p.LocalGiB, p.RemoteGiB)

	var ran struct {
		Results []struct {
			Kind        string `json:"kind"`
			Accesses    uint64 `json:"accesses"`
			MajorFaults uint64 `json:"major_faults"`
		} `json:"results"`
	}
	status, body = do(http.MethodPost, "/v1/fleets/"+created.ID+"/workloads",
		fmt.Sprintf(`{"items":[{"vm":%q,"kind":"micro-benchmark","iterations":1,"seed":7}]}`, p.VM))
	if err := json.Unmarshal(body, &ran); err != nil {
		panic(err)
	}
	fmt.Printf("workload (%d): %s, %d accesses, %d major faults\n",
		status, ran.Results[0].Kind, ran.Results[0].Accesses, ran.Results[0].MajorFaults)

	status, _ = do(http.MethodPost, "/v1/fleets/"+created.ID+"/autopilot",
		`{"machines":10,"tasks":60,"hours":1,"seed":7,"tick_sec":600}`)
	fmt.Printf("autopilot (%d): started\n", status)

	req, err := http.NewRequest(http.MethodGet, base+"/v1/fleets/"+created.ID+"/autopilot/events", nil)
	if err != nil {
		panic(err)
	}
	req.Header.Set("Authorization", "Bearer demo")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	ticks := 0
	var done struct {
		Policy        string  `json:"policy"`
		RegretPercent float64 `json:"regret_percent"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			panic(err)
		}
		if line.Type == "done" {
			if err := json.Unmarshal(sc.Bytes(), &done); err != nil {
				panic(err)
			}
			break
		}
		ticks++
	}
	resp.Body.Close()
	fmt.Printf("events: %d ticks, then done — %s regret %.2f%% vs the oracle\n",
		ticks, done.Policy, done.RegretPercent)

	var report struct {
		Fleet struct {
			VMs       int     `json:"vms"`
			RemoteGiB float64 `json:"remote_gib"`
		} `json:"fleet"`
		Autopilot struct {
			Running bool `json:"running"`
			Ticks   int  `json:"ticks"`
		} `json:"autopilot"`
	}
	status, body = do(http.MethodGet, "/v1/fleets/"+created.ID+"/report", "")
	if err := json.Unmarshal(body, &report); err != nil {
		panic(err)
	}
	fmt.Printf("report (%d): %d VM, %.2f GiB remote still free, autopilot running=%v over %d ticks\n",
		status, report.Fleet.VMs, report.Fleet.RemoteGiB, report.Autopilot.Running, report.Autopilot.Ticks)

	status, _ = do(http.MethodDelete, "/v1/fleets/"+created.ID, "")
	fmt.Printf("delete (%d): session retired\n", status)

	// Output:
	// create (201): fleet f-1, 1 zombie lending 1.00 GiB
	// place (200): f-1-vm-0 on rack-00/server-00, 1.00 GiB local + 0.25 GiB remote
	// workload (200): micro-benchmark, 16384 accesses, 0 major faults
	// autopilot (202): started
	// events: 5 ticks, then done — hysteresis regret 4.32% vs the oracle
	// report (200): 1 VM, 0.75 GiB remote still free, autopilot running=false over 5 ticks
	// delete (204): session retired
}

// Example_scenarios is the workload-family quickstart as a compiled,
// asserted test: generate a scenario from a family, compose two families
// into one workload with disjoint ID namespaces, round-trip a trace through
// the streaming gzip importer, and run a small policy×scenario matrix.
func Example_scenarios() {
	params := zombieland.FamilyParams{
		Machines: 20, HorizonSec: 2 * 3600, Tasks: 200, Seed: 42,
	}

	// A workload family is a seeded generator: same params, same trace.
	tr, err := zombieland.GenerateFamily("flashcrowd", params)
	if err != nil {
		panic(err)
	}
	fmt.Printf("flashcrowd: %d tasks on %d machines over %dh\n",
		len(tr.Tasks), tr.Machines, tr.HorizonSec/3600)

	// Compose splits the task budget across families and renumbers task and
	// job IDs into disjoint ranges — a composite replays like a native trace.
	fams := zombieland.WorkloadFamilies()
	mixed, err := zombieland.ComposeFamilies("web-batch", fams[0], fams[3]).Generate(params)
	if err != nil {
		panic(err)
	}
	fmt.Printf("compose(%s, %s): %d tasks, IDs dense in 0..%d\n",
		fams[0].Name(), fams[3].Name(), len(mixed.Tasks), len(mixed.Tasks)-1)

	// The importer streams .csv/.csv.gz record at a time (gzip is sniffed
	// from the magic bytes) and derives the fleet size and horizon from the
	// workload itself.
	var buf bytes.Buffer
	if err := tr.EncodeCSV(&buf, true); err != nil {
		panic(err)
	}
	imported, err := zombieland.ImportTrace(&buf, zombieland.TraceImportOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("imported: %d tasks, derived fleet of %d machines\n",
		len(imported.Tasks), imported.Machines)

	// The policy×scenario matrix replays every pack under every online
	// policy with chaos injected; the result is bit-identical across runs
	// and worker counts.
	packs, err := zombieland.ScenarioFamilyPacks(zombieland.FamilyParams{
		Machines: 20, HorizonSec: 2 * 3600, Tasks: 120, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	m, err := zombieland.RunScenarioMatrix(zombieland.ScenarioMatrixConfig{
		Packs:     packs[:2], // diurnal and flashcrowd
		Policies:  []string{"reactive", "ewma"},
		ChaosSeed: 42,
		Workers:   2,
	})
	if err != nil {
		panic(err)
	}
	for _, c := range m.Cells {
		fmt.Printf("%s/%s: oracle %.1f%%, online %.1f%%, retained %.1f%%\n",
			c.Scenario, c.Policy, c.Report.OracleSavingPercent,
			c.Report.FaultFreeSavingPercent, c.Report.SavingsRetainedPercent)
	}

	// Output:
	// flashcrowd: 200 tasks on 20 machines over 2h
	// compose(diurnal, mlbatch): 200 tasks, IDs dense in 0..199
	// imported: 200 tasks, derived fleet of 10 machines
	// diurnal/reactive: oracle 47.7%, online 44.4%, retained 98.5%
	// diurnal/ewma: oracle 47.7%, online 43.8%, retained 98.5%
	// flashcrowd/reactive: oracle 60.7%, online 56.4%, retained 98.6%
	// flashcrowd/ewma: oracle 60.7%, online 56.1%, retained 98.8%
}
