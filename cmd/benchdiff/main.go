// Command benchdiff compares two BENCH_fleet.json trajectories (the
// committed baseline and a freshly measured report) and fails when the new
// one regresses, benchstat style:
//
//   - ns/op: a configuration more than -max-ns-regress slower (10% by
//     default) fails the diff. Wall-clock is only comparable on comparable
//     hardware, so the check is skipped — with a note — when the two reports
//     were measured at different GOMAXPROCS.
//   - allocs/op: any increase fails. Allocation counts are deterministic per
//     (name, workers) configuration, so there is no noise margin to grant;
//     a hot path that starts allocating is a real regression even when the
//     wall clock hides it.
//
// Entries are matched by (name, workers); configurations present on only one
// side (a new benchmark, or a pool size measured only on wider hardware) are
// reported and skipped.
//
// Usage:
//
//	benchdiff -old BENCH_fleet.json -new /tmp/bench.json
//	benchdiff -old BENCH_fleet.json -new /tmp/bench.json -max-ns-regress 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// Run mirrors the cmd/benchfleet schema entry; unknown fields are ignored so
// the diff keeps working across additive schema growth.
type Run struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// Report is the subset of the BENCH_fleet.json schema the diff needs.
type Report struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Fleet      []Run  `json:"fleet"`
	DCSim      []Run  `json:"dcsim"`
	Autopilot  []Run  `json:"autopilot"`
	Gateway    []Run  `json:"gateway"`
}

// runs flattens the report's sections into one slice.
func (r *Report) runs() []Run {
	var out []Run
	out = append(out, r.Fleet...)
	out = append(out, r.DCSim...)
	out = append(out, r.Autopilot...)
	out = append(out, r.Gateway...)
	return out
}

// key identifies a benchmark configuration across reports.
type key struct {
	name    string
	workers int
}

const schemaV3 = "zombieland-bench-fleet/v3"

func main() {
	oldPath := flag.String("old", "BENCH_fleet.json", "baseline trajectory (the committed file)")
	newPath := flag.String("new", "", "freshly measured trajectory to compare against the baseline")
	maxNsRegress := flag.Float64("max-ns-regress", 0.10,
		"maximum tolerated ns/op regression as a fraction (0.10 = 10%); applied only when both reports share GOMAXPROCS")
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	ok, err := diff(os.Stdout, *oldPath, *newPath, *maxNsRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// load reads and validates one trajectory file.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != schemaV3 {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, schemaV3)
	}
	return &rep, nil
}

// diff compares the two trajectories, printing every verdict to out, and
// reports whether the new trajectory passes.
func diff(out io.Writer, oldPath, newPath string, maxNsRegress float64) (bool, error) {
	oldRep, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := load(newPath)
	if err != nil {
		return false, err
	}

	compareNs := oldRep.GOMAXPROCS == newRep.GOMAXPROCS
	if !compareNs {
		fmt.Fprintf(out, "note: baseline measured at GOMAXPROCS=%d, new at %d — ns/op not comparable, checking allocations only\n",
			oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
	}

	baseline := make(map[key]Run)
	for _, r := range oldRep.runs() {
		baseline[key{r.Name, r.Workers}] = r
	}

	pass := true
	matched := 0
	for _, nr := range newRep.runs() {
		br, ok := baseline[key{nr.Name, nr.Workers}]
		if !ok {
			fmt.Fprintf(out, "skip  %s/w=%d: no baseline entry\n", nr.Name, nr.Workers)
			continue
		}
		matched++
		if nr.AllocsPerOp > br.AllocsPerOp {
			fmt.Fprintf(out, "FAIL  %s/w=%d: allocs/op %d -> %d (any growth fails)\n",
				nr.Name, nr.Workers, br.AllocsPerOp, nr.AllocsPerOp)
			pass = false
			continue
		}
		if compareNs && br.NsPerOp > 0 {
			ratio := float64(nr.NsPerOp)/float64(br.NsPerOp) - 1
			if ratio > maxNsRegress {
				fmt.Fprintf(out, "FAIL  %s/w=%d: ns/op %d -> %d (+%.1f%%, floor %.1f%%)\n",
					nr.Name, nr.Workers, br.NsPerOp, nr.NsPerOp, ratio*100, maxNsRegress*100)
				pass = false
				continue
			}
			fmt.Fprintf(out, "ok    %s/w=%d: ns/op %d -> %d, allocs/op %d -> %d\n",
				nr.Name, nr.Workers, br.NsPerOp, nr.NsPerOp, br.AllocsPerOp, nr.AllocsPerOp)
			continue
		}
		fmt.Fprintf(out, "ok    %s/w=%d: allocs/op %d -> %d\n",
			nr.Name, nr.Workers, br.AllocsPerOp, nr.AllocsPerOp)
	}
	if matched == 0 {
		fmt.Fprintln(out, "FAIL  no configuration matched between the reports")
		pass = false
	}
	if pass {
		fmt.Fprintf(out, "benchdiff: %d configurations compared, no regressions\n", matched)
	}
	return pass, nil
}
