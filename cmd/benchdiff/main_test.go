package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// report builds a minimal v3 trajectory fixture.
func report(t *testing.T, dir, name string, gomaxprocs int, fleetNs, fleetAllocs int64) string {
	t.Helper()
	body := `{
  "schema": "zombieland-bench-fleet/v3",
  "gomaxprocs": ` + itoa(gomaxprocs) + `,
  "fleet": [
    {"name": "FleetWorkloads", "workers": 1, "ns_per_op": ` + itoa64(fleetNs) + `, "allocs_per_op": ` + itoa64(fleetAllocs) + `, "bytes_per_op": 100}
  ],
  "gateway": [
    {"name": "GatewayQuotaAllow", "workers": 0, "ns_per_op": 20, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }

// TestDiffPasses checks a mild (within-floor) slowdown with flat allocations
// passes.
func TestDiffPasses(t *testing.T) {
	dir := t.TempDir()
	oldPath := report(t, dir, "old.json", 4, 1000, 50)
	newPath := report(t, dir, "new.json", 4, 1050, 50)
	var buf bytes.Buffer
	ok, err := diff(&buf, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("diff failed unexpectedly:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Fatalf("missing pass summary:\n%s", buf.String())
	}
}

// TestDiffFailsOnNsRegression checks a >10% slowdown fails.
func TestDiffFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := report(t, dir, "old.json", 4, 1000, 50)
	newPath := report(t, dir, "new.json", 4, 1200, 50)
	var buf bytes.Buffer
	ok, err := diff(&buf, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("diff passed a 20%% ns/op regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "ns/op") {
		t.Fatalf("missing ns/op failure line:\n%s", buf.String())
	}
}

// TestDiffFailsOnAnyAllocGrowth checks a single extra allocation fails even
// when the wall clock improved.
func TestDiffFailsOnAnyAllocGrowth(t *testing.T) {
	dir := t.TempDir()
	oldPath := report(t, dir, "old.json", 4, 1000, 50)
	newPath := report(t, dir, "new.json", 4, 900, 51)
	var buf bytes.Buffer
	ok, err := diff(&buf, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("diff passed an allocs/op regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "allocs/op 50 -> 51") {
		t.Fatalf("missing allocs failure line:\n%s", buf.String())
	}
}

// TestDiffSkipsNsAcrossHardware checks that reports measured at different
// GOMAXPROCS only compare allocations: a big wall-clock delta passes, an
// allocation delta still fails.
func TestDiffSkipsNsAcrossHardware(t *testing.T) {
	dir := t.TempDir()
	oldPath := report(t, dir, "old.json", 1, 1000, 50)
	newPath := report(t, dir, "new.json", 4, 5000, 50)
	var buf bytes.Buffer
	ok, err := diff(&buf, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("cross-hardware diff failed on wall clock:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ns/op not comparable") {
		t.Fatalf("missing cross-hardware note:\n%s", buf.String())
	}

	newPath = report(t, dir, "new2.json", 4, 5000, 60)
	buf.Reset()
	ok, err = diff(&buf, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("cross-hardware diff ignored an allocs/op regression:\n%s", buf.String())
	}
}

// TestDiffRejectsWrongSchema checks v2 files are refused.
func TestDiffRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v2.json")
	if err := os.WriteFile(path, []byte(`{"schema": "zombieland-bench-fleet/v2"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := report(t, dir, "good.json", 4, 1000, 50)
	var buf bytes.Buffer
	if _, err := diff(&buf, path, good, 0.10); err == nil {
		t.Fatal("expected a schema error for a v2 baseline")
	}
}
