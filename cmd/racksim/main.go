// Command racksim runs the rack-level experiments of the paper's evaluation:
// the replacement-policy comparison (Figure 8), the RAM Ext penalty study
// (Table 1), the swap-technology comparison (Table 2) and the migration-time
// comparison (Figure 9).
//
// Usage:
//
//	racksim                  # run everything
//	racksim -exp table1      # one experiment: fig8, table1, table2, fig9
//	racksim -seed 7          # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	zombieland "repro"
)

// validExperiments lists the accepted -exp values in presentation order.
var validExperiments = []string{"fig8", "table1", "table2", "fig9", "all"}

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(validExperiments, ", "))
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if err := run(*exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "racksim:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64) error {
	// Reject typos before running anything, so a mistyped experiment name
	// cannot silently print nothing.
	if !validExperiment(exp) {
		return fmt.Errorf("unknown experiment %q (valid: %s)", exp, strings.Join(validExperiments, ", "))
	}
	show := func(name string) bool { return exp == "all" || exp == name }

	if show("fig8") {
		res, err := zombieland.Figure8(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("Best policy over the sweep: %s (the paper reports mixed)\n\n", res.BestPolicy())
	}
	if show("table1") {
		res, err := zombieland.Table1(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if show("table2") {
		res, err := zombieland.Table2(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if show("fig9") {
		res, err := zombieland.Figure9()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	return nil
}

// validExperiment reports whether the name is a known experiment.
func validExperiment(name string) bool {
	for _, v := range validExperiments {
		if name == v {
			return true
		}
	}
	return false
}
