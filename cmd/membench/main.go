// Command membench drives real byte traffic through the remote-memory data
// plane and reports throughput and latency percentiles: a miniature rack is
// wired up (fabric, global controller, agents), the requested servers are
// pushed into Sz so their DRAM serves one-sided verbs, and a seeded random
// mix of reads and writes runs through a memplane whose overflow frames live
// in the zombies' granted buffers. All latency is simulated (charged from the
// fabric's cost model), so two runs with the same flags print the same
// numbers.
//
// Usage:
//
//	membench                                # 3 servers, 2 zombies, in-process verbs
//	membench -ops 100000 -block 16384       # bigger blocks
//	membench -transport tcp                 # serve the verbs over loopback TCP
//	membench -transport ledger              # cost arithmetic only, no bytes
//	membench -chaos                         # degrade the fabric mid-run
//	membench -obs                           # append the obs dump: metrics
//	                                        #   snapshot + NDJSON event trace
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"repro/internal/chaos"
	"repro/internal/memctl"
	"repro/internal/memplane"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rdma"
)

type benchConfig struct {
	servers   int
	zombies   int
	memMiB    int
	localMiB  int
	spanMiB   int
	ops       int
	block     int
	writeFrac float64
	seed      int64
	transport string
	chaosOn   bool
	obsOn     bool
}

func main() {
	var cfg benchConfig
	flag.IntVar(&cfg.servers, "servers", 3, "servers in the rack (the first hosts the VM)")
	flag.IntVar(&cfg.zombies, "zombies", 2, "servers pushed into Sz to lend their memory")
	flag.IntVar(&cfg.memMiB, "mem-mib", 64, "memory per server in MiB")
	flag.IntVar(&cfg.localMiB, "local-mib", 1, "the plane's local arena in MiB")
	flag.IntVar(&cfg.spanMiB, "span-mib", 8, "address span the traffic covers in MiB")
	flag.IntVar(&cfg.ops, "ops", 20000, "operations to run")
	flag.IntVar(&cfg.block, "block", 4096, "bytes per operation")
	flag.Float64Var(&cfg.writeFrac, "write-frac", 0.6, "fraction of operations that write")
	flag.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the address/op stream")
	flag.StringVar(&cfg.transport, "transport", "inproc", "remote path: inproc (live RDMA verbs), tcp (loopback TCP server), ledger (cost arithmetic only)")
	flag.BoolVar(&cfg.chaosOn, "chaos", false, "degrade the fabric 2.5x for the middle third of the run")
	flag.BoolVar(&cfg.obsOn, "obs", false, "attach the observability layer and append its dump: metrics snapshot + deterministic NDJSON event trace")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "membench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg benchConfig) error {
	if cfg.zombies >= cfg.servers {
		return fmt.Errorf("need at least one non-zombie server (%d servers, %d zombies)", cfg.servers, cfg.zombies)
	}
	if cfg.block <= 0 || cfg.ops <= 0 {
		return fmt.Errorf("block and ops must be positive")
	}
	span := int64(cfg.spanMiB) << 20
	if int64(cfg.block) > span {
		return fmt.Errorf("block %d exceeds the %d MiB span", cfg.block, cfg.spanMiB)
	}

	// The miniature rack: a fabric, a controller, one agent per server. The
	// first server hosts the VM and keeps its memory reserved; the zombies
	// delegate theirs and suspend with the device path serving.
	fabric := rdma.NewFabric(rdma.DefaultCostModel())
	ctr := memctl.NewGlobalController()
	devices := make(map[string]*rdma.Device)
	resolve := func(id memctl.ServerID) *rdma.Device { return devices[string(id)] }
	var user *memctl.Agent
	for i := 0; i < cfg.servers; i++ {
		name := fmt.Sprintf("server-%02d", i)
		dev, err := fabric.AttachDevice(name)
		if err != nil {
			return err
		}
		devices[name] = dev
		reserved := int64(0)
		if i == 0 {
			reserved = int64(cfg.memMiB) << 20
		}
		agent, err := memctl.NewAgent(memctl.AgentConfig{
			ID:            memctl.ServerID(name),
			Controller:    ctr,
			Device:        dev,
			TotalMem:      int64(cfg.memMiB) << 20,
			ReservedMem:   reserved,
			ResolveDevice: resolve,
		})
		if err != nil {
			return err
		}
		if i == 0 {
			user = agent
		} else if i <= cfg.zombies {
			if _, err := agent.DelegateAndGoZombie(); err != nil {
				return err
			}
			dev.SetUp(false)
			dev.SetServing(true)
		}
	}

	// The simulation clock ticks once per operation; the chaos plan degrades
	// the middle third of the run.
	var now int64
	var plan *chaos.Plan
	if cfg.chaosOn {
		plan = &chaos.Plan{Faults: []chaos.Fault{{
			Kind:        chaos.FabricDegrade,
			AtSec:       int64(cfg.ops / 3),
			DurationSec: int64(cfg.ops / 3),
			Factor:      2.5,
		}}}
	}

	// The plane stamps every event with its cumulative charged-ns clock, so
	// the -obs dump is byte-identical run to run — and across transports,
	// since the charges are: the obs transport-invariance test leans on that.
	var o *obs.Obs
	if cfg.obsOn {
		o = obs.New(obs.Options{TraceCapacity: 4096})
	}

	pcfg := memplane.Config{
		VM:              "bench",
		LocalBytes:      int64(cfg.localMiB) << 20,
		AddressBytes:    span,
		Agent:           user,
		Cost:            fabric.Model(),
		Chaos:           plan,
		Now:             func() int64 { return now },
		RecordLatencies: true,
		Obs:             o,
	}
	var cleanup func()
	switch cfg.transport {
	case "inproc":
	case "ledger":
		pcfg.Transport = memplane.LedgerTransport{Model: fabric.Model()}
	case "tcp":
		// A TCP transport addresses buffers by ID on a remote endpoint, so the
		// plane is seeded with every buffer it will ever need up front and the
		// server exports them.
		bufs, err := user.RequestExt(span)
		if err != nil {
			return err
		}
		srv, err := memplane.NewTCPServer()
		if err != nil {
			return err
		}
		srv.Register(bufs...)
		tr, err := memplane.DialTCP(srv.Addr())
		if err != nil {
			srv.Close()
			return err
		}
		pcfg.Agent = nil
		pcfg.Buffers = bufs
		pcfg.Transport = tr
		cleanup = func() {
			_ = tr.Close()
			_ = srv.Close()
		}
	default:
		return fmt.Errorf("unknown transport %q (inproc, tcp or ledger)", cfg.transport)
	}
	p, err := memplane.New(pcfg)
	if err != nil {
		return err
	}
	defer func() {
		_ = p.Close()
		if cleanup != nil {
			cleanup()
		}
	}()

	// The op stream: seeded addresses across the span, writes carrying a
	// deterministic pattern mirrored into a shadow copy for the final
	// verification sweep.
	rng := rand.New(rand.NewSource(cfg.seed))
	shadow := make([]byte, span)
	buf := make([]byte, cfg.block)
	for i := 0; i < cfg.ops; i++ {
		now = int64(i)
		addr := rng.Int63n(span - int64(cfg.block) + 1)
		if rng.Float64() < cfg.writeFrac {
			for j := range buf {
				buf[j] = byte(addr>>4) + byte(j)*7 + byte(i)
			}
			if _, _, err := p.Write(addr, buf); err != nil {
				return fmt.Errorf("write op %d: %w", i, err)
			}
			copy(shadow[addr:], buf)
		} else {
			if _, _, err := p.Read(addr, buf); err != nil {
				return fmt.Errorf("read op %d: %w", i, err)
			}
		}
	}

	// Snapshot the counters before the verification sweep so the report
	// reflects the benchmark traffic alone.
	st := p.Stats()
	as := p.AllocStats()
	lat := p.Latencies()

	// The obs dump is rendered here too, so it reflects the benchmark
	// traffic alone — the verification sweep below also runs through the
	// plane and would otherwise land in the counters and the trace.
	var obsDump bytes.Buffer
	if o != nil {
		if err := o.Dump(&obsDump); err != nil {
			return err
		}
	}

	// Verification: the whole span reads back exactly the shadow copy.
	verified := "ok"
	check := make([]byte, 64<<10)
	for off := int64(0); off < span; off += int64(len(check)) {
		n := int64(len(check))
		if off+n > span {
			n = span - off
		}
		if _, _, err := p.Read(off, check[:n]); err != nil {
			return fmt.Errorf("verify read at %d: %w", off, err)
		}
		for j := int64(0); j < n; j++ {
			if check[j] != shadow[off+j] {
				verified = fmt.Sprintf("MISMATCH at %d", off+j)
				off = span
				break
			}
		}
	}

	report(w, cfg, st, as, lat, verified)
	if o != nil {
		fmt.Fprintln(w)
		if _, err := w.Write(obsDump.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// report prints the run summary. Every number derives from the simulated
// charges, so the output is stable across machines.
func report(w io.Writer, cfg benchConfig, st memplane.Stats, as memplane.AllocStats, lat []int64, verified string) {
	fmt.Fprintf(w, "membench: %d servers (%d zombies), %s transport, %d ops x %d B, %.0f%% writes, seed %d\n",
		cfg.servers, cfg.zombies, cfg.transport, cfg.ops, cfg.block, cfg.writeFrac*100, cfg.seed)
	fmt.Fprintf(w, "plane: %d MiB local arena over a %d MiB span, chaos %v\n\n", cfg.localMiB, cfg.spanMiB, cfg.chaosOn)

	totalBytes := st.BytesRead + st.BytesWritten
	secs := float64(st.ChargedNs) / 1e9
	mbs := 0.0
	if secs > 0 {
		mbs = float64(totalBytes) / (1 << 20) / secs
	}
	fmt.Fprintf(w, "traffic   %d reads, %d writes, %.1f MiB moved\n", st.Reads, st.Writes, float64(totalBytes)/(1<<20))
	fmt.Fprintf(w, "paths     %d local page ops, %d remote page ops, %.1f MiB across the fabric\n",
		st.LocalOps, st.RemoteOps, float64(st.RemoteBytesRead+st.RemoteBytesWritten)/(1<<20))
	fmt.Fprintf(w, "frames    %d local, %d remote in %d granted buffers (%d grant calls)\n",
		as.LocalFrames, as.RemoteFrames, as.BuffersGranted, as.GrantCalls)
	fmt.Fprintf(w, "simtime   %.3f s charged -> %.1f MiB/s\n", secs, mbs)
	fmt.Fprintf(w, "latency   p50 %d ns, p99 %d ns, max %d ns per op\n", percentile(lat, 50), percentile(lat, 99), percentile(lat, 100))
	if st.Timeouts > 0 || st.ShortReads > 0 {
		fmt.Fprintf(w, "faults    %d timeouts, %d short reads\n", st.Timeouts, st.ShortReads)
	}
	fmt.Fprintf(w, "verify    read-back %s\n", verified)
}

// percentile returns the q-th percentile of the charge series (q=100 is the
// max); 0 when nothing was recorded. The rank selection is the shared
// nearest-rank helper, so membench and fleetload quote the same convention.
func percentile(lat []int64, q int) int64 {
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return metrics.NearestRank(s, q)
}
