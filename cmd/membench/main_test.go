package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./cmd/... -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

func benchCfg() benchConfig {
	return benchConfig{
		servers:   3,
		zombies:   2,
		memMiB:    64,
		localMiB:  1,
		spanMiB:   8,
		ops:       2000,
		block:     4096,
		writeFrac: 0.6,
		seed:      1,
		transport: "inproc",
	}
}

// TestGoldenMembench pins the default in-process report: the traffic mix,
// the local/remote split, the grant count, the charged time and the latency
// percentiles are all simulated, so the bytes are stable across machines.
func TestGoldenMembench(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, benchCfg()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "membench", buf.Bytes())
}

// TestGoldenMembenchChaos pins the ledger transport under a fabric
// degradation window: same traffic counters as the in-process run (the
// differential invariant), but the middle third of the charges carry the
// 2.5x factor, which the p99 line exposes.
func TestGoldenMembenchChaos(t *testing.T) {
	cfg := benchCfg()
	cfg.transport = "ledger"
	cfg.chaosOn = true
	var buf bytes.Buffer
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "membench_chaos", buf.Bytes())
}

// TestGoldenMembenchObs pins the -obs dump on a short run (few enough ops
// that the whole event trace fits the ring): every event is stamped with the
// plane's charged-ns clock, so the dump is byte-stable across machines. The
// counters cover the benchmark traffic alone — the verification sweep runs
// after the dump is rendered.
func TestGoldenMembenchObs(t *testing.T) {
	cfg := benchCfg()
	cfg.ops = 320
	cfg.obsOn = true
	var buf bytes.Buffer
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(buf.Bytes(), []byte("--- obs metrics ---"))
	if i < 0 {
		t.Fatal("no obs dump in -obs output")
	}
	checkGolden(t, "membench_obs", buf.Bytes()[i:])
}

// TestMembenchObsTransportInvariant demands the obs dump be byte-identical
// between the in-process and loopback-TCP transports: the events carry only
// simulated charges and frame hosts, both of which the differential layer
// already pins to be transport-independent.
func TestMembenchObsTransportInvariant(t *testing.T) {
	dump := func(transport string) []byte {
		cfg := benchCfg()
		cfg.ops = 320
		cfg.obsOn = true
		cfg.transport = transport
		var buf bytes.Buffer
		if err := run(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		i := bytes.Index(buf.Bytes(), []byte("--- obs metrics ---"))
		if i < 0 {
			t.Fatal("no obs dump in -obs output")
		}
		return buf.Bytes()[i:]
	}
	inproc := dump("inproc")
	if tcp := dump("tcp"); !bytes.Equal(inproc, tcp) {
		t.Errorf("obs dump drifted between transports:\n--- inproc ---\n%s\n--- tcp ---\n%s", inproc, tcp)
	}
}

// TestMembenchTCPMatchesInproc runs the loopback-TCP transport and demands
// the body of the report (everything below the header naming the transport)
// be byte-identical to the in-process run: same counters, same charges.
func TestMembenchTCPMatchesInproc(t *testing.T) {
	body := func(transport string) string {
		cfg := benchCfg()
		cfg.transport = transport
		var buf bytes.Buffer
		if err := run(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		_, rest, ok := strings.Cut(buf.String(), "\n")
		if !ok {
			t.Fatalf("no header line in output: %q", buf.String())
		}
		// The grant-call count differs by design: TCP pre-seeds its buffers.
		return strings.ReplaceAll(rest, "(0 grant calls)", "(1 grant calls)")
	}
	inproc := body("inproc")
	tcp := body("tcp")
	if inproc != tcp {
		t.Errorf("tcp report drifted from inproc:\n--- inproc ---\n%s\n--- tcp ---\n%s", inproc, tcp)
	}
	if !strings.Contains(inproc, "read-back ok") {
		t.Errorf("verification failed:\n%s", inproc)
	}
}
