package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./cmd/... -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

// steppingNow returns a clock that advances by step on every call, making
// every request's latency exactly one step and the elapsed span a pure
// function of the request count.
func steppingNow(step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

// TestGoldenFleetload pins the single-client report end to end: one seeded
// worker against an in-process gateway with a stepping latency clock, so the
// endpoint mix, the percentile lines and the throughput line are all
// byte-stable across machines.
func TestGoldenFleetload(t *testing.T) {
	var buf bytes.Buffer
	cfg := loadCfg{
		inproc:   true,
		clients:  1,
		requests: 12,
		seed:     42,
		strict:   true,
		now:      steppingNow(time.Millisecond),
	}
	if err := run(&buf, cfg); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	checkGolden(t, "fleetload", buf.Bytes())
}

// TestFleetloadWritesReport checks the -out artifact: schema v1 JSON with
// the totals the stdout report printed.
func TestFleetloadWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_gateway.json")
	var buf bytes.Buffer
	cfg := loadCfg{
		inproc:   true,
		clients:  2,
		requests: 6,
		seed:     7,
		out:      out,
		strict:   true,
		now:      steppingNow(time.Millisecond),
	}
	if err := run(&buf, cfg); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": 1`, `"tool": "fleetload"`, `"total_requests": 12`, `"server_5xx": 0`, `"p99_ms"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %s:\n%s", want, data)
		}
	}
	if !strings.Contains(buf.String(), "Wrote "+out) {
		t.Errorf("stdout never acknowledged the artifact:\n%s", buf.String())
	}
}

// TestFleetloadValidation pins the CLI contract: the shared-helper messages
// for the numeric flags and the target/inproc exclusivity.
func TestFleetloadValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  loadCfg
		want string
	}{
		{"no target", loadCfg{clients: 1, requests: 2}, "exactly one of -target and -inproc"},
		{"both targets", loadCfg{target: "http://x", inproc: true, clients: 1, requests: 2}, "exactly one of -target and -inproc"},
		{"zero clients", loadCfg{inproc: true, clients: 0, requests: 2}, "-clients 0 out of range (need >= 1)"},
		{"negative requests", loadCfg{inproc: true, clients: 1, requests: -3}, "-requests -3 out of range (need >= 1)"},
		{"one request", loadCfg{inproc: true, clients: 1, requests: 1}, "-requests 1 out of range (need >= 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(&bytes.Buffer{}, tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
