// Command fleetload is the gateway load generator: N concurrent clients ×
// M requests against a fleetd target from a seeded mixed endpoint profile
// (create fleet → place/workloads/report traffic → delete fleet), reporting
// throughput and p50/p99/max latency and writing the serving-path perf
// trajectory to BENCH_gateway.json (schema v1).
//
// Usage:
//
//	fleetload -inproc                           # hammer an in-process gateway
//	fleetload -target http://127.0.0.1:8870     # hammer a running fleetd
//	fleetload -clients 8 -requests 1250         # 10k requests total
//	fleetload -out BENCH_gateway.json -strict   # perf artifact; fail on any 5xx
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cliflag"
	"repro/internal/gateway"
	"repro/internal/metrics"
)

func main() {
	target := flag.String("target", "", "gateway base URL (empty requires -inproc)")
	inproc := flag.Bool("inproc", false, "spin up an in-process gateway and hammer it over loopback")
	clients := flag.Int("clients", 4, "concurrent load clients")
	requests := flag.Int("requests", 250, "requests per client (create and delete included)")
	token := flag.String("token", "", "bearer token to present")
	seed := flag.Int64("seed", 1, "endpoint-profile seed (client i draws from seed+i)")
	out := flag.String("out", "", "write the JSON report (schema v1) to this path")
	strict := flag.Bool("strict", false, "exit non-zero on any transport error, 5xx response, or zero p99")
	flag.Parse()

	cfg := loadCfg{
		target: *target, inproc: *inproc, clients: *clients, requests: *requests,
		token: *token, seed: *seed, out: *out, strict: *strict,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fleetload:", err)
		os.Exit(1)
	}
}

type loadCfg struct {
	target   string
	inproc   bool
	clients  int
	requests int
	token    string
	seed     int64
	out      string
	strict   bool
	// now is the latency-clock seam; the golden test injects a stepping fake
	// so the percentile lines are byte-stable. nil means time.Now.
	now func() time.Time
}

func run(w io.Writer, cfg loadCfg) error {
	// Upfront flag validation with the valid ranges (shared helpers, the
	// same messages as fleetsim/onlinesim).
	if err := cliflag.FirstError(
		cliflag.PositiveInt("-clients", cfg.clients),
		cliflag.PositiveInt("-requests", cfg.requests),
	); err != nil {
		return err
	}
	if cfg.requests < 2 {
		return fmt.Errorf("-requests %d out of range (need >= 2: every client issues a create and a delete)", cfg.requests)
	}
	if (cfg.target == "") == !cfg.inproc {
		return fmt.Errorf("exactly one of -target and -inproc is required")
	}

	target := cfg.target
	label := target
	if cfg.inproc {
		// An in-process gateway on a loopback listener: same serving path,
		// no external process to coordinate.
		srv := gateway.New(gateway.Config{Token: cfg.token})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		target = "http://" + ln.Addr().String()
		label = "in-process gateway"
	}

	rep, err := gateway.RunLoad(gateway.LoadConfig{
		Target:   target,
		Token:    cfg.token,
		Clients:  cfg.clients,
		Requests: cfg.requests,
		Seed:     cfg.seed,
		Now:      cfg.now,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Load: %s — %d clients x %d requests, seed %d.\n\n", label, cfg.clients, cfg.requests, cfg.seed)
	et := metrics.NewTable("Per-endpoint latency", "endpoint", "count", "errors", "5xx", "p50-ms", "p99-ms", "max-ms")
	for _, e := range rep.Endpoints {
		et.AddRow(e.Name,
			fmt.Sprintf("%d", e.Count), fmt.Sprintf("%d", e.Errors), fmt.Sprintf("%d", e.Server5xx),
			metrics.FormatFloat(e.P50Ms), metrics.FormatFloat(e.P99Ms), metrics.FormatFloat(e.MaxMs))
	}
	fmt.Fprintln(w, et.String())
	fmt.Fprintf(w, "Total: %d requests in %s ms (%s req/s), %d transport errors, %d 5xx, %d rate-limited.\n",
		rep.Total, metrics.FormatFloat(rep.ElapsedMs), metrics.FormatFloat(rep.ThroughputRPS), rep.Errors, rep.Server5xx, rep.RateLimited)
	fmt.Fprintf(w, "Latency: p50 %s ms, p99 %s ms, max %s ms.\n",
		metrics.FormatFloat(rep.P50Ms), metrics.FormatFloat(rep.P99Ms), metrics.FormatFloat(rep.MaxMs))

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "Wrote %s (schema %d).\n", cfg.out, rep.Schema)
	}

	if cfg.strict {
		if rep.Errors > 0 || rep.Server5xx > 0 {
			return fmt.Errorf("strict: %d transport errors, %d 5xx responses", rep.Errors, rep.Server5xx)
		}
		if rep.P99Ms <= 0 {
			return fmt.Errorf("strict: p99 latency is zero — the clock or the load path is broken")
		}
	}
	return nil
}
