// Command fleetd serves the zombieland control plane as a long-running HTTP
// service: create fleets, place VMs, replay workloads through the data
// plane, run autopilot loops with streamed tick telemetry, apply chaos
// scenarios and scrape savings/regret reports — concurrent isolated
// sessions behind a logging/recovery/auth/rate-limit middleware stack.
//
// Usage:
//
//	fleetd                                     # serve on :8870, no auth, no quota
//	fleetd -addr 127.0.0.1:9000 -token secret  # bearer auth
//	fleetd -quota 50 -quota-window 1           # 50 requests/tenant/second (429 beyond)
//	fleetd -ttl 900                            # evict sessions idle > 15 min
//	fleetd -pprof                              # mount /debug/pprof/* (behind auth)
//
// GET /metrics serves Prometheus text exposition: per-route request
// counters and latency histograms, per-tenant quota denials, and live
// session gauges.
//
// Quickstart (see README.md for the full transcript):
//
//	curl -s -XPOST localhost:8870/v1/fleets -d '{"racks":2,"servers":4,"zombies_per_rack":1}'
//	curl -s -XPOST localhost:8870/v1/fleets/f-1/vms -d '{"count":2,"gib":24}'
//	curl -s -XPOST localhost:8870/v1/fleets/f-1/autopilot -d '{}'
//	curl -sN  localhost:8870/v1/fleets/f-1/autopilot/events
//	curl -s   localhost:8870/v1/fleets/f-1/report
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	zombieland "repro"
	"repro/internal/cliflag"
)

func main() {
	addr := flag.String("addr", ":8870", "listen address")
	token := flag.String("token", "", "bearer token every request must present (empty disables auth)")
	quota := flag.Int("quota", 0, "per-tenant request budget per quota window (0 disables rate limiting)")
	quotaWindow := flag.Int("quota-window", 1, "quota window in seconds")
	ttl := flag.Int("ttl", 0, "evict sessions idle longer than this many seconds (0 disables)")
	maxSessions := flag.Int("max-sessions", 64, "maximum live sessions")
	maxServers := flag.Int("max-servers", 256, "maximum racks*servers per created fleet")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/* profiling endpoints (behind auth)")
	flag.Parse()

	if err := run(*addr, *token, *quota, *quotaWindow, *ttl, *maxSessions, *maxServers, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

func run(addr, token string, quota, quotaWindow, ttl, maxSessions, maxServers int, pprofOn bool) error {
	// Upfront flag validation with the valid ranges (shared helpers, the
	// same messages as fleetsim/onlinesim), before any server state exists.
	if err := cliflag.FirstError(
		cliflag.NonNegativeInt("-quota", quota),
		cliflag.PositiveInt("-quota-window", quotaWindow),
		cliflag.NonNegativeInt("-ttl", ttl),
		cliflag.PositiveInt("-max-sessions", maxSessions),
		cliflag.PositiveInt("-max-servers", maxServers),
	); err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := zombieland.NewGateway(zombieland.GatewayConfig{
		Token:       token,
		QuotaLimit:  quota,
		QuotaWindow: time.Duration(quotaWindow) * time.Second,
		SessionTTL:  time.Duration(ttl) * time.Second,
		MaxSessions: maxSessions,
		MaxServers:  maxServers,
		LogHandler:  logger.Handler(),
		EnablePprof: pprofOn,
	})
	defer srv.Close()
	logger.Info("serving", "addr", addr, "auth", token != "",
		"quota", quota, "quota_window_s", quotaWindow, "ttl_s", ttl, "pprof", pprofOn)
	return srv.ListenAndServe(addr)
}
