package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./cmd/... -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

// TestGoldenFleetScenario pins the full fleetsim report — placement table,
// borrow ledger, workload and fabric tables, energy — on a small fleet with
// the scripted -chaos fault sequence on, so the fault log format is pinned
// too.
func TestGoldenFleetScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 3, 1, 16, 3, 20, "spark-sql,elasticsearch", "", "", 2, 1, 1, true, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleetsim_chaos", buf.Bytes())
}

// TestGoldenFleetScenarioObs pins the -obs dump of the same scenario: the
// metrics snapshot and the step-clock NDJSON trace are deterministic for a
// fixed invocation, so the whole report is golden-testable.
func TestGoldenFleetScenarioObs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 3, 1, 16, 3, 20, "spark-sql,elasticsearch", "", "", 2, 1, 1, true, true); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleetsim_chaos_obs", buf.Bytes())
}

// TestObsDumpByteStable runs the observed scenario twice across worker-pool
// sizes and demands identical dump bytes — the CLI-level determinism
// acceptance check. The comparison starts at the obs header because the
// report's own banner prints the pool size.
func TestObsDumpByteStable(t *testing.T) {
	render := func(workers int) []byte {
		var buf bytes.Buffer
		if err := run(&buf, 2, 3, 1, 16, 3, 20, "spark-sql,elasticsearch", "", "", workers, 1, 1, true, true); err != nil {
			t.Fatal(err)
		}
		i := bytes.Index(buf.Bytes(), []byte("--- obs metrics ---"))
		if i < 0 {
			t.Fatal("no obs dump in -obs output")
		}
		return buf.Bytes()[i:]
	}
	a, b := render(2), render(2)
	if !bytes.Equal(a, b) {
		t.Error("same-config -obs runs diverged")
	}
	if seq := render(1); !bytes.Equal(a, seq) {
		t.Error("-obs dump diverged across -workers values")
	}
}

// TestGoldenFamilyBatch pins the fleet report when the VM batch comes from a
// workload family: per-task bookings replace the uniform -vm-gib batch.
func TestGoldenFamilyBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 3, 1, 16, 4, 20, "spark-sql,elasticsearch", "heavytail", "", 2, 1, 1, false, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleetsim_family", buf.Bytes())
}

// TestTraceFlagBatch derives the batch from an on-disk .csv.gz trace and
// checks the trace's task IDs reach the placement table.
func TestTraceFlagBatch(t *testing.T) {
	tr, err := trace.GenerateFamily("serverless", trace.FamilyParams{
		Machines: 6, HorizonSec: 3600, Tasks: 8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.csv.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeCSV(f, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, 2, 3, 1, 16, 4, 20, "spark-sql,elasticsearch", "", path, 2, 1, 1, false, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(tr.Tasks[0].VMID())) {
		t.Fatalf("placement table does not show the trace's task IDs:\n%s", buf.Bytes())
	}
}

// TestVMSpecsErrors pins the trace-source validation of the batch builder.
func TestVMSpecsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 3, 1, 16, 4, 20, "spark-sql,elasticsearch", "diurnal", "x.csv", 2, 1, 1, false, false); err == nil {
		t.Error("-family with -trace accepted")
	}
	if err := run(&buf, 2, 3, 1, 16, 4, 20, "spark-sql,elasticsearch", "nope", "", 2, 1, 1, false, false); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run(&buf, 2, 3, 1, 16, 4, 20, "spark-sql,elasticsearch", "", filepath.Join(t.TempDir(), "missing.csv"), 2, 1, 1, false, false); err == nil {
		t.Error("missing trace file accepted")
	}
}
