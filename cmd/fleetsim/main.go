// Command fleetsim brings up a multi-rack fleet and runs a cross-rack
// scenario against it: lender racks push servers into Sz, a batch of VMs is
// placed across the fleet (dry racks borrow remote memory from peers over
// the inter-rack fabric), the workload mix replays on the worker pool, and
// the placement table, borrow ledger, inter-rack traffic and energy report
// are printed.
//
// Usage:
//
//	fleetsim                                   # 4 racks x 4 servers
//	fleetsim -racks 8 -servers 8 -vms 24       # bigger fleet
//	fleetsim -workers 8                        # fixed-size execution pool
//	                                           #   (default 0: one worker per core)
//	fleetsim -mix spark-sql,data-caching       # workload mix to rotate
//	fleetsim -family heavytail -vms 12         # VM batch from a workload family
//	fleetsim -trace cluster.csv.gz -vms 12     # VM batch from an on-disk trace
//	fleetsim -chaos                            # scripted faults: crash, controller
//	                                           #   kill, failed wake — with fault log
//	fleetsim -obs                              # append the obs dump: metrics
//	                                           #   snapshot + NDJSON event trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	zombieland "repro"
	"repro/internal/cliflag"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	racks := flag.Int("racks", 4, "number of racks in the fleet")
	servers := flag.Int("servers", 4, "servers per rack")
	zombies := flag.Int("zombies", 2, "servers pushed into Sz on every second rack (the lenders)")
	memGiB := flag.Int("mem-gib", 16, "memory per server in GiB")
	vms := flag.Int("vms", 6, "VMs to place across the fleet")
	vmGiB := flag.Float64("vm-gib", 28, "VM reserved memory in GiB")
	mix := flag.String("mix", "spark-sql,elasticsearch", "comma-separated workload mix rotated across the VMs")
	family := flag.String("family", "", "derive the VM batch from the first -vms tasks of a workload family (seed 42) instead of the uniform -vm-gib batch: "+strings.Join(trace.FamilyNames(), ", "))
	traceFile := flag.String("trace", "", "derive the VM batch from the first -vms tasks of a .csv/.csv.gz trace file")
	workers := flag.Int("workers", 0, "worker-pool size for placement and workload execution (0 = every core, runtime.GOMAXPROCS)")
	hours := flag.Float64("hours", 1, "simulated hours to account energy over")
	iterations := flag.Int("iterations", 2, "paging-replay iterations per workload")
	chaosOn := flag.Bool("chaos", false, "inject a scripted fault sequence (server crash before placement, controller kill after, a failed wake) and print the fault log")
	obsOn := flag.Bool("obs", false, "attach the observability layer and append its dump: metrics snapshot + deterministic NDJSON event trace")
	flag.Parse()

	if err := run(os.Stdout, *racks, *servers, *zombies, *memGiB, *vms, *vmGiB, *mix, *family, *traceFile, *workers, *hours, *iterations, *chaosOn, *obsOn); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func parseMix(csv string) ([]zombieland.Workload, error) {
	var kinds []zombieland.Workload
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, k := range zombieland.Workloads() {
			if k.String() == name {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			var valid []string
			for _, k := range zombieland.Workloads() {
				valid = append(valid, k.String())
			}
			return nil, fmt.Errorf("unknown workload %q in -mix (valid: %s)", name, strings.Join(valid, ", "))
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-mix selects no workloads")
	}
	return kinds, nil
}

// vmSpecs builds the VM batch: the uniform -vm-gib batch by default, or VMs
// derived from the first -vms tasks of a workload family / imported trace —
// reserved memory from the task's booking, working set from its usage.
func vmSpecs(vms int, vmGiB float64, family, traceFile string, machines int, hours float64) ([]zombieland.VM, error) {
	var tr *zombieland.Trace
	var err error
	switch {
	case family != "" && traceFile != "":
		return nil, fmt.Errorf("-family and -trace are mutually exclusive")
	case family != "":
		tr, err = trace.GenerateFamily(family, trace.FamilyParams{
			Machines: machines, HorizonSec: int64(hours * 3600), Tasks: vms, Seed: 42,
		})
	case traceFile != "":
		tr, err = trace.ImportFile(traceFile, trace.ImportOptions{})
	default:
		var specs []zombieland.VM
		for i := 0; i < vms; i++ {
			specs = append(specs, zombieland.NewVM(fmt.Sprintf("vm-%02d", i),
				int64(vmGiB*float64(1<<30)), int64(vmGiB*0.75*float64(1<<30))))
		}
		return specs, nil
	}
	if err != nil {
		return nil, err
	}
	if len(tr.Tasks) < vms {
		return nil, fmt.Errorf("trace %q has only %d tasks, need -vms %d", tr.Name, len(tr.Tasks), vms)
	}
	var specs []zombieland.VM
	for _, task := range tr.Tasks[:vms] {
		wss := task.UsedMemGiB
		if wss <= 0 || wss > task.BookedMemGiB {
			wss = task.BookedMemGiB * 0.75
		}
		specs = append(specs, zombieland.NewVM(task.VMID(),
			int64(task.BookedMemGiB*float64(1<<30)), int64(wss*float64(1<<30))))
	}
	return specs, nil
}

func run(out io.Writer, racks, servers, zombies, memGiB, vms int, vmGiB float64, mix, family, traceFile string, workers int, hours float64, iterations int, chaosOn, obsOn bool) error {
	// Upfront flag validation with the valid ranges (shared helpers, the
	// same messages as onlinesim/fleetload), so a bad invocation fails
	// before any fleet state is built.
	if err := cliflag.FirstError(
		cliflag.PositiveInt("-racks", racks),
		cliflag.PositiveInt("-servers", servers),
		cliflag.PositiveInt("-vms", vms),
		cliflag.NonNegativeInt("-workers", workers),
		cliflag.NonNegativeInt("-zombies", zombies),
	); err != nil {
		return err
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if zombies >= servers {
		return fmt.Errorf("-zombies %d must leave at least one active server per rack (-servers %d)", zombies, servers)
	}
	kinds, err := parseMix(mix)
	if err != nil {
		return err
	}
	specs, err := vmSpecs(vms, vmGiB, family, traceFile, racks*servers, hours)
	if err != nil {
		return err
	}

	board := zombieland.DefaultBoardSpec()
	board.MemoryBytes = uint64(memGiB) << 30
	f, err := zombieland.NewFleet(zombieland.FleetConfig{
		Racks:   racks,
		Rack:    zombieland.RackConfig{Servers: servers, Board: board},
		Workers: workers,
	})
	if err != nil {
		return err
	}
	// The step clock (not wall time) stamps trace events, so the -obs dump of
	// a given invocation is byte-identical run to run, for any -workers value.
	var o *zombieland.Obs
	if obsOn {
		o = zombieland.NewObs(zombieland.ObsOptions{Clock: zombieland.ObsStepClock()})
		f.SetObs(o)
	}
	fmt.Fprintf(out, "Fleet up: %d racks x %d servers (%d GiB each), worker pool %d.\n\n", racks, servers, memGiB, workers)

	// Every second rack lends: its tail servers go to Sz and feed the
	// fleet-wide remote memory pool; the other racks stay dry and must
	// borrow across racks for memory-hungry VMs.
	for ri := 1; ri < racks; ri += 2 {
		names := f.Rack(ri).Servers()
		for z := 0; z < zombies; z++ {
			if err := f.PushToZombie(ri, names[len(names)-1-z]); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(out, "Lender racks ready: %.1f GiB of remote memory fleet-wide.\n\n",
		float64(f.FreeRemoteMemory())/float64(1<<30))

	// The scripted fault sequence of -chaos: a dry-rack server crashes
	// before placement (the batch must route around it), a lender's
	// controller dies after the workloads (the secondary promotes, borrowed
	// memory keeps serving), and a wake attempt fails once (the injected
	// stuck-zombie fault) before succeeding on retry.
	var chaosEvents *metrics.Table
	var crashedServer string
	if chaosOn {
		chaosEvents = metrics.NewTable("Chaos events (scripted)", "event", "target", "outcome")
		crashedServer = f.Rack(0).Servers()[servers-1]
		if err := f.CrashServer(0, crashedServer); err != nil {
			return err
		}
		chaosEvents.AddRow("server-crash", crashedServer, "placement must route around it")
	}

	placements, err := f.PlaceVMs(specs, zombieland.CreateVMOptions{})
	if err != nil {
		return err
	}
	pt := metrics.NewTable("Placement", "vm", "rack", "host", "local-gib", "remote-gib", "borrowed-gib", "from")
	var reqs []zombieland.FleetWorkloadRequest
	for i, p := range placements {
		if p.Err != "" {
			pt.AddRow(p.VM, "-", "-", "-", "-", "-", p.Err)
			continue
		}
		from := p.BorrowedFrom
		if from == "" {
			from = "-"
		}
		pt.AddRow(p.VM, p.Rack, p.Host,
			metrics.FormatFloat(float64(p.LocalBytes)/float64(1<<30)),
			metrics.FormatFloat(float64(p.RemoteBytes)/float64(1<<30)),
			metrics.FormatFloat(float64(p.BorrowedBytes)/float64(1<<30)),
			from)
		reqs = append(reqs, zombieland.FleetWorkloadRequest{
			VM:         p.VM,
			Kind:       kinds[i%len(kinds)],
			Iterations: iterations,
			Seed:       int64(i + 1),
		})
	}
	fmt.Fprintln(out, pt.String())

	lt := metrics.NewTable("Cross-rack borrow ledger", "vm", "borrower", "lender", "gib", "buffers")
	for _, b := range f.BorrowLedger() {
		lt.AddRow(b.VM, b.Borrower, b.Lender,
			metrics.FormatFloat(float64(b.Bytes)/float64(1<<30)),
			metrics.FormatFloat(float64(b.Buffers)))
	}
	fmt.Fprintln(out, lt.String())

	results := f.RunWorkloads(reqs)
	wt := metrics.NewTable("Workloads (pool-sharded)", "vm", "rack", "workload", "accesses", "major-faults", "remote-ms")
	for _, res := range results {
		if res.Err != "" {
			wt.AddRow(res.VM, res.Rack, res.Kind.String(), "-", "-", res.Err)
			continue
		}
		wt.AddRowf(res.VM, res.Rack, res.Kind.String(),
			res.Stats.Accesses, res.Stats.MajorFaults, res.Stats.RemoteNs/1e6)
	}
	fmt.Fprintln(out, wt.String())

	ft := metrics.NewTable("Inter-rack RDMA traffic (lender fabrics)", "rack", "ops", "bytes", "premium-ms")
	for i, st := range f.FabricStats() {
		if st.InterRackOps == 0 {
			continue
		}
		ft.AddRowf(f.RackNames()[i], st.InterRackOps, st.InterRackBytes, float64(st.InterRackNs)/1e6)
	}
	fmt.Fprintln(out, ft.String())

	if chaosOn {
		if err := runChaosScript(out, f, chaosEvents, crashedServer, racks); err != nil {
			return err
		}
	}

	f.AdvanceClock(int64(hours * 3600 * 1e9))
	perRack := metrics.NewTable(fmt.Sprintf("Energy over %.1f simulated hour(s)", hours), "rack", "joules")
	for i := 0; i < f.Racks(); i++ {
		perRack.AddRowf(f.RackNames()[i], f.Rack(i).TotalEnergyJoules())
	}
	fmt.Fprintln(out, perRack.String())
	fmt.Fprintf(out, "Fleet total: %.0f J across %d racks.\n", f.TotalEnergyJoules(), f.Racks())
	if obsOn {
		fmt.Fprintln(out)
		return o.Dump(out)
	}
	return nil
}

// failNextWakes is the scripted FaultInjector: the first n wake attempts
// fail, the rest pass.
type failNextWakes struct{ n int }

func (fi *failNextWakes) WakeFails(rack int, server string) bool {
	if fi.n > 0 {
		fi.n--
		return true
	}
	return false
}

// runChaosScript drives the post-workload faults of -chaos and prints the
// fault log: a lender controller dies (the secondary promotes itself and
// every cross-rack borrow keeps serving) and the crashed server is revived
// but sticks on its first wake attempt.
func runChaosScript(out io.Writer, f *zombieland.Fleet, events *metrics.Table, crashedServer string, racks int) error {
	if racks > 1 {
		borrowsBefore := len(f.BorrowLedger())
		if err := f.KillController(1, f.Rack(1).Now()+10e9); err != nil {
			return err
		}
		outcome := fmt.Sprintf("secondary promoted, %d borrows kept serving", borrowsBefore)
		events.AddRow("controller-kill", f.RackNames()[1], outcome)
	}
	if err := f.ReviveServer(0, crashedServer); err != nil {
		return err
	}
	events.AddRow("server-revive", crashedServer, "back in the control plane")
	if err := f.Suspend(0, crashedServer, zombieland.S3); err != nil {
		return err
	}
	f.SetFaultInjector(&failNextWakes{n: 1})
	if err := f.Wake(0, crashedServer); err != nil {
		events.AddRow("wake-failure", crashedServer, "stuck on first attempt: "+err.Error())
	}
	if err := f.Wake(0, crashedServer); err != nil {
		return err
	}
	f.SetFaultInjector(nil)
	events.AddRow("wake-retry", crashedServer, "second attempt woke the server")
	fmt.Fprintln(out, events.String())
	return nil
}
