// Command fleetsim brings up a multi-rack fleet and runs a cross-rack
// scenario against it: lender racks push servers into Sz, a batch of VMs is
// placed across the fleet (dry racks borrow remote memory from peers over
// the inter-rack fabric), the workload mix replays on the worker pool, and
// the placement table, borrow ledger, inter-rack traffic and energy report
// are printed.
//
// Usage:
//
//	fleetsim                                   # 4 racks x 4 servers
//	fleetsim -racks 8 -servers 8 -vms 24       # bigger fleet
//	fleetsim -workers 8                        # wider execution pool
//	fleetsim -mix spark-sql,data-caching       # workload mix to rotate
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	zombieland "repro"
	"repro/internal/metrics"
)

func main() {
	racks := flag.Int("racks", 4, "number of racks in the fleet")
	servers := flag.Int("servers", 4, "servers per rack")
	zombies := flag.Int("zombies", 2, "servers pushed into Sz on every second rack (the lenders)")
	memGiB := flag.Int("mem-gib", 16, "memory per server in GiB")
	vms := flag.Int("vms", 6, "VMs to place across the fleet")
	vmGiB := flag.Float64("vm-gib", 28, "VM reserved memory in GiB")
	mix := flag.String("mix", "spark-sql,elasticsearch", "comma-separated workload mix rotated across the VMs")
	workers := flag.Int("workers", 4, "worker-pool size for placement and workload execution")
	hours := flag.Float64("hours", 1, "simulated hours to account energy over")
	iterations := flag.Int("iterations", 2, "paging-replay iterations per workload")
	flag.Parse()

	if err := run(*racks, *servers, *zombies, *memGiB, *vms, *vmGiB, *mix, *workers, *hours, *iterations); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func parseMix(csv string) ([]zombieland.Workload, error) {
	var kinds []zombieland.Workload
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, k := range zombieland.Workloads() {
			if k.String() == name {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			var valid []string
			for _, k := range zombieland.Workloads() {
				valid = append(valid, k.String())
			}
			return nil, fmt.Errorf("unknown workload %q in -mix (valid: %s)", name, strings.Join(valid, ", "))
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-mix selects no workloads")
	}
	return kinds, nil
}

func run(racks, servers, zombies, memGiB, vms int, vmGiB float64, mix string, workers int, hours float64, iterations int) error {
	// Upfront flag validation with the valid ranges, so a bad invocation
	// fails before any fleet state is built.
	if racks < 1 {
		return fmt.Errorf("-racks %d out of range (need >= 1)", racks)
	}
	if servers < 1 {
		return fmt.Errorf("-servers %d out of range (need >= 1)", servers)
	}
	if vms < 1 {
		return fmt.Errorf("-vms %d out of range (need >= 1)", vms)
	}
	if workers < 1 {
		return fmt.Errorf("-workers %d out of range (need >= 1)", workers)
	}
	if zombies < 0 {
		return fmt.Errorf("-zombies %d out of range (need >= 0)", zombies)
	}
	if zombies >= servers {
		return fmt.Errorf("-zombies %d must leave at least one active server per rack (-servers %d)", zombies, servers)
	}
	kinds, err := parseMix(mix)
	if err != nil {
		return err
	}

	board := zombieland.DefaultBoardSpec()
	board.MemoryBytes = uint64(memGiB) << 30
	f, err := zombieland.NewFleet(zombieland.FleetConfig{
		Racks:   racks,
		Rack:    zombieland.RackConfig{Servers: servers, Board: board},
		Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Fleet up: %d racks x %d servers (%d GiB each), worker pool %d.\n\n", racks, servers, memGiB, workers)

	// Every second rack lends: its tail servers go to Sz and feed the
	// fleet-wide remote memory pool; the other racks stay dry and must
	// borrow across racks for memory-hungry VMs.
	for ri := 1; ri < racks; ri += 2 {
		names := f.Rack(ri).Servers()
		for z := 0; z < zombies; z++ {
			if err := f.PushToZombie(ri, names[len(names)-1-z]); err != nil {
				return err
			}
		}
	}
	fmt.Printf("Lender racks ready: %.1f GiB of remote memory fleet-wide.\n\n",
		float64(f.FreeRemoteMemory())/float64(1<<30))

	var specs []zombieland.VM
	for i := 0; i < vms; i++ {
		specs = append(specs, zombieland.NewVM(fmt.Sprintf("vm-%02d", i),
			int64(vmGiB*float64(1<<30)), int64(vmGiB*0.75*float64(1<<30))))
	}
	placements, err := f.PlaceVMs(specs, zombieland.CreateVMOptions{})
	if err != nil {
		return err
	}
	pt := metrics.NewTable("Placement", "vm", "rack", "host", "local-gib", "remote-gib", "borrowed-gib", "from")
	var reqs []zombieland.FleetWorkloadRequest
	for i, p := range placements {
		if p.Err != "" {
			pt.AddRow(p.VM, "-", "-", "-", "-", "-", p.Err)
			continue
		}
		from := p.BorrowedFrom
		if from == "" {
			from = "-"
		}
		pt.AddRow(p.VM, p.Rack, p.Host,
			metrics.FormatFloat(float64(p.LocalBytes)/float64(1<<30)),
			metrics.FormatFloat(float64(p.RemoteBytes)/float64(1<<30)),
			metrics.FormatFloat(float64(p.BorrowedBytes)/float64(1<<30)),
			from)
		reqs = append(reqs, zombieland.FleetWorkloadRequest{
			VM:         p.VM,
			Kind:       kinds[i%len(kinds)],
			Iterations: iterations,
			Seed:       int64(i + 1),
		})
	}
	fmt.Println(pt.String())

	lt := metrics.NewTable("Cross-rack borrow ledger", "vm", "borrower", "lender", "gib", "buffers")
	for _, b := range f.BorrowLedger() {
		lt.AddRow(b.VM, b.Borrower, b.Lender,
			metrics.FormatFloat(float64(b.Bytes)/float64(1<<30)),
			metrics.FormatFloat(float64(b.Buffers)))
	}
	fmt.Println(lt.String())

	results := f.RunWorkloads(reqs)
	wt := metrics.NewTable("Workloads (pool-sharded)", "vm", "rack", "workload", "accesses", "major-faults", "remote-ms")
	for _, res := range results {
		if res.Err != "" {
			wt.AddRow(res.VM, res.Rack, res.Kind.String(), "-", "-", res.Err)
			continue
		}
		wt.AddRowf(res.VM, res.Rack, res.Kind.String(),
			res.Stats.Accesses, res.Stats.MajorFaults, res.Stats.RemoteNs/1e6)
	}
	fmt.Println(wt.String())

	ft := metrics.NewTable("Inter-rack RDMA traffic (lender fabrics)", "rack", "ops", "bytes", "premium-ms")
	for i, st := range f.FabricStats() {
		if st.InterRackOps == 0 {
			continue
		}
		ft.AddRowf(f.RackNames()[i], st.InterRackOps, st.InterRackBytes, float64(st.InterRackNs)/1e6)
	}
	fmt.Println(ft.String())

	f.AdvanceClock(int64(hours * 3600 * 1e9))
	perRack := metrics.NewTable(fmt.Sprintf("Energy over %.1f simulated hour(s)", hours), "rack", "joules")
	for i := 0; i < f.Racks(); i++ {
		perRack.AddRowf(f.RackNames()[i], f.Rack(i).TotalEnergyJoules())
	}
	fmt.Println(perRack.String())
	fmt.Printf("Fleet total: %.0f J across %d racks.\n", f.TotalEnergyJoules(), f.Racks())
	return nil
}
