// Command benchfleet records the repository's performance trajectory in
// BENCH_fleet.json: it runs the fleet worker-pool benchmark (the same
// scenario as BenchmarkFleetWorkloads, via fleet.NewBenchFleet) at pool
// sizes 1, 2 and 4, the dcsim engine benchmarks (sequential, parallel,
// transition-costed, sweep), the online control plane (one autopilot run
// per bundled policy, with the derived re-planning tick throughput) and the
// gateway quota cache's lock-free fast path, and writes every ns/op together
// with allocations per operation and the derived speedups.
//
// Methodology: every configuration is measured with a fixed iteration count
// after a warm-up replay, the configurations are interleaved round-robin
// over several rounds, and the minimum per-operation time across rounds is
// recorded — the estimator least sensitive to scheduler noise on shared
// machines. Allocation counts (runtime.MemStats deltas over the timed loop,
// divided by the iteration count) ride along with the round that produced
// the minimum; unlike wall-clock they are deterministic, so any growth is a
// real regression and cmd/benchdiff fails on it.
//
// The CI bench step runs it with -min-speedup 1.5: on a host with at least
// four CPUs the Workers=4 fleet replay must beat Workers=1 by at least that
// factor. With fewer CPUs the gate is skipped — goroutines cannot beat
// wall-clock on one core, and two noisy shared vCPUs cannot express the 4-way
// parallelism reliably — and the report records gomaxprocs (and
// parallel_hardware=false on single-core) so the trajectory stays honest
// about where it was measured.
//
// Usage:
//
//	benchfleet                       # write BENCH_fleet.json in the cwd
//	benchfleet -out /tmp/bench.json  # write elsewhere
//	benchfleet -min-speedup 1.5      # fail below 1.5x (multi-core hosts)
//	benchfleet -cpuprofile cpu.pprof # also write a CPU profile of the run
//	benchfleet -memprofile mem.pprof # also write an allocation profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/autopilot"
	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/trace"
)

// rounds is how many times every configuration is re-measured; the minimum
// across rounds is reported.
const rounds = 3

// Run is one recorded benchmark: a name, the worker-pool size it used, the
// fixed per-round iteration count, the minimum per-operation time across
// rounds and the allocation profile of that round.
type Run struct {
	Name       string `json:"name"`
	Workers    int    `json:"workers"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp are heap allocations (count and bytes) per
	// operation, measured as runtime.MemStats deltas over the timed loop.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// Report is the BENCH_fleet.json schema.
type Report struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// ParallelHardware is false when the host cannot express goroutine
	// parallelism as wall-clock speedup (GOMAXPROCS=1); speedup gates are
	// skipped in that case.
	ParallelHardware bool  `json:"parallel_hardware"`
	Fleet            []Run `json:"fleet"`
	// FleetSpeedup4v1 is ns/op(Workers=1) / ns/op(Workers=4) for the fleet
	// workload replay — the acceptance number of the fleet layer.
	FleetSpeedup4v1 float64 `json:"fleet_speedup_workers4_vs_1"`
	DCSim           []Run   `json:"dcsim"`
	// DCSimSpeedup is ns/op(sequential) / ns/op(parallel) for the epoch
	// engine at GOMAXPROCS workers.
	DCSimSpeedup float64 `json:"dcsim_speedup_parallel_vs_sequential"`
	// Autopilot is the online control plane: one full Run per online policy
	// on the bench trace (same scenario as BenchmarkAutopilotTicks).
	Autopilot []Run `json:"autopilot"`
	// AutopilotTicksPerSec is the re-planning tick throughput of the fastest
	// online policy — the online loop's entry on the perf trajectory.
	AutopilotTicksPerSec float64 `json:"autopilot_ticks_per_sec"`
	// Gateway pins the serving layer's hot path: the per-tenant quota check,
	// whose allocs_per_op must stay 0 (the lock-free fast path).
	Gateway []Run `json:"gateway"`
}

func main() {
	out := flag.String("out", "BENCH_fleet.json", "path of the JSON trajectory to write")
	minSpeedup := flag.Float64("min-speedup", 0,
		"fail unless the Workers=4 fleet bench beats Workers=1 by this factor (0 disables; skipped when GOMAXPROCS=1)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file after the run")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfleet:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchfleet:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	rep, err := collect()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfleet:", err)
		os.Exit(1)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfleet:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "benchfleet:", err)
			os.Exit(1)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfleet:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchfleet:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: fleet speedup %.2fx (workers=4 vs 1), dcsim speedup %.2fx (parallel vs sequential), autopilot %.0f ticks/s\n",
		*out, rep.FleetSpeedup4v1, rep.DCSimSpeedup, rep.AutopilotTicksPerSec)

	if *minSpeedup > 0 {
		// The gate compares Workers=4 against Workers=1; below four CPUs the
		// measurement cannot express the expected parallelism (and on two
		// noisy shared vCPUs it would flake), so only enforce at >= 4.
		if rep.GOMAXPROCS < 4 {
			fmt.Printf("min-speedup %.2fx gate skipped: GOMAXPROCS=%d < 4\n", *minSpeedup, rep.GOMAXPROCS)
			return
		}
		if rep.FleetSpeedup4v1 < *minSpeedup {
			fmt.Fprintf(os.Stderr, "benchfleet: fleet speedup %.2fx below the %.2fx floor\n",
				rep.FleetSpeedup4v1, *minSpeedup)
			os.Exit(1)
		}
	}
}

// sample is one round's measurement of a configuration.
type sample struct {
	ns, allocs, bytes int64
}

// timeIt runs fn iters times, returning per-operation wall clock and the
// heap-allocation deltas of the timed loop. The MemStats reads bracket the
// timing (the second read happens after the clock stops), so the
// stop-the-world cost of ReadMemStats never lands in ns/op.
func timeIt(iters int, fn func() error) (sample, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return sample{}, err
		}
	}
	elapsed := int64(time.Since(start))
	runtime.ReadMemStats(&after)
	return sample{
		ns:     elapsed / int64(iters),
		allocs: int64(after.Mallocs-before.Mallocs) / int64(iters),
		bytes:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
	}, nil
}

// better keeps the sample with the lower ns/op (allocation counts ride along
// with the winning round).
func better(cur *sample, ok bool, s sample) sample {
	if !ok || s.ns < cur.ns {
		return s
	}
	return *cur
}

// measureFleet times one fleet configuration: build, warm up with one full
// replay (the first pass on a fresh fleet faults every page in), then run a
// fixed number of steady-state replays.
func measureFleet(workers, iters int) (sample, error) {
	f, reqs, err := fleet.NewBenchFleet(fleet.DefaultBenchSpec(workers))
	if err != nil {
		return sample{}, err
	}
	replay := func() error {
		for _, r := range f.RunWorkloads(reqs) {
			if r.Err != "" {
				return fmt.Errorf("workload %s: %s", r.VM, r.Err)
			}
		}
		return nil
	}
	if err := replay(); err != nil {
		return sample{}, err
	}
	return timeIt(iters, replay)
}

func collect() (*Report, error) {
	rep := &Report{
		Schema:           "zombieland-bench-fleet/v3",
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ParallelHardware: runtime.GOMAXPROCS(0) > 1,
	}

	// Fleet workload replay at the BenchmarkFleetWorkloads pool sizes,
	// interleaved round-robin; keep the minimum ns/op per pool size.
	const fleetIters = 20
	poolSizes := []int{1, 2, 4}
	best := make(map[int]sample)
	for round := 0; round < rounds; round++ {
		for _, workers := range poolSizes {
			s, err := measureFleet(workers, fleetIters)
			if err != nil {
				return nil, err
			}
			cur, ok := best[workers]
			best[workers] = better(&cur, ok, s)
		}
	}
	for _, workers := range poolSizes {
		rep.Fleet = append(rep.Fleet, Run{
			Name:        "FleetWorkloads",
			Workers:     workers,
			Iterations:  fleetIters,
			NsPerOp:     best[workers].ns,
			AllocsPerOp: best[workers].allocs,
			BytesPerOp:  best[workers].bytes,
		})
	}
	if best[4].ns > 0 {
		rep.FleetSpeedup4v1 = float64(best[1].ns) / float64(best[4].ns)
	}

	// The dcsim engine benchmarks: the same trace and configuration as
	// BenchmarkDCSimSequential / Parallel / Transitions in bench_test.go.
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "bench", Machines: 200, HorizonSec: 24 * 3600, Tasks: 3000,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, IdleFraction: 0.25, Seed: 42,
	})
	if err != nil {
		return nil, err
	}
	parWorkers := runtime.GOMAXPROCS(0)
	engineCfg := func(workers int, transitions bool) dcsim.Config {
		return dcsim.Config{
			Trace:                  tr,
			Policy:                 consolidation.NewZombieStack(),
			Machine:                energy.HPProfile(),
			ServerSpec:             consolidation.DefaultServerSpec(),
			ConsolidationPeriodSec: 30,
			Workers:                workers,
			TransitionCosts:        transitions,
		}
	}
	sweepCfg := dcsim.DefaultSweepConfig()
	for i := range sweepCfg.TraceConfigs {
		sweepCfg.TraceConfigs[i].Machines = 80
		sweepCfg.TraceConfigs[i].Tasks = 800
		sweepCfg.TraceConfigs[i].HorizonSec = 6 * 3600
	}
	sweepCfg.SweepWorkers = parWorkers

	const dcsimIters = 3
	engines := []struct {
		name    string
		workers int
		run     func() error
	}{
		{"DCSimSequential", 0, func() error { _, err := dcsim.Run(engineCfg(0, false)); return err }},
		{"DCSimParallel", parWorkers, func() error { _, err := dcsim.Run(engineCfg(parWorkers, false)); return err }},
		{"DCSimTransitions", 0, func() error { _, err := dcsim.Run(engineCfg(0, true)); return err }},
		{"DCSimSweep", parWorkers, func() error { _, err := dcsim.Sweep(sweepCfg); return err }},
	}
	bestEngine := make(map[string]sample)
	for round := 0; round < rounds; round++ {
		for _, e := range engines {
			if err := e.run(); err != nil { // warm-up
				return nil, err
			}
			s, err := timeIt(dcsimIters, e.run)
			if err != nil {
				return nil, err
			}
			cur, ok := bestEngine[e.name]
			bestEngine[e.name] = better(&cur, ok, s)
		}
	}
	for _, e := range engines {
		rep.DCSim = append(rep.DCSim, Run{
			Name:        e.name,
			Workers:     e.workers,
			Iterations:  dcsimIters,
			NsPerOp:     bestEngine[e.name].ns,
			AllocsPerOp: bestEngine[e.name].allocs,
			BytesPerOp:  bestEngine[e.name].bytes,
		})
	}
	if bestEngine["DCSimParallel"].ns > 0 {
		rep.DCSimSpeedup = float64(bestEngine["DCSimSequential"].ns) / float64(bestEngine["DCSimParallel"].ns)
	}

	// The online control plane: one full autopilot run per bundled policy on
	// the same bench trace, recorded as ns/op plus the tick throughput of the
	// fastest policy.
	const autopilotIters = 3
	onlineCfg := func(pol autopilot.Policy) autopilot.Config {
		return autopilot.Config{
			Trace:      tr,
			Policy:     pol,
			Machine:    energy.HPProfile(),
			ServerSpec: consolidation.DefaultServerSpec(),
			TickSec:    300,
		}
	}
	onlinePolicies := []struct {
		name string
		make func() autopilot.Policy
	}{
		{"reactive", func() autopilot.Policy { return autopilot.NewReactive(consolidation.NewZombieStack()) }},
		{"hysteresis", func() autopilot.Policy { return autopilot.NewHysteresis(consolidation.NewZombieStack()) }},
		{"ewma", func() autopilot.Policy { return autopilot.NewPredictiveEWMA(consolidation.NewZombieStack()) }},
	}
	bestOnline := make(map[string]sample)
	var onlineTicks int
	for round := 0; round < rounds; round++ {
		for _, pol := range onlinePolicies {
			// The warm-up run also reports the tick count. Policies hold
			// forecasting state across ticks, so every run gets a fresh
			// instance.
			res, err := autopilot.Run(onlineCfg(pol.make()))
			if err != nil {
				return nil, err
			}
			onlineTicks = res.Ticks
			s, err := timeIt(autopilotIters, func() error {
				_, err := autopilot.Run(onlineCfg(pol.make()))
				return err
			})
			if err != nil {
				return nil, err
			}
			cur, ok := bestOnline[pol.name]
			bestOnline[pol.name] = better(&cur, ok, s)
		}
	}
	var fastest int64
	for _, pol := range onlinePolicies {
		rep.Autopilot = append(rep.Autopilot, Run{
			Name:        "AutopilotRun/" + pol.name,
			Iterations:  autopilotIters,
			NsPerOp:     bestOnline[pol.name].ns,
			AllocsPerOp: bestOnline[pol.name].allocs,
			BytesPerOp:  bestOnline[pol.name].bytes,
		})
		if fastest == 0 || bestOnline[pol.name].ns < fastest {
			fastest = bestOnline[pol.name].ns
		}
	}
	if fastest > 0 && onlineTicks > 0 {
		rep.AutopilotTicksPerSec = float64(onlineTicks) / (float64(fastest) / 1e9)
	}

	// The gateway quota fast path: one allow() check per op. The warmed
	// bucket makes the loop lock-free and allocation-free; allocs_per_op is
	// expected to stay exactly 0 and the benchdiff gate fails on any growth.
	const quotaIters = 2_000_000
	allow := gateway.QuotaBench()
	var bestQuota sample
	quotaOK := false
	for round := 0; round < rounds; round++ {
		s, err := timeIt(quotaIters, func() error {
			allow()
			return nil
		})
		if err != nil {
			return nil, err
		}
		bestQuota = better(&bestQuota, quotaOK, s)
		quotaOK = true
	}
	rep.Gateway = append(rep.Gateway, Run{
		Name:        "GatewayQuotaAllow",
		Iterations:  quotaIters,
		NsPerOp:     bestQuota.ns,
		AllocsPerOp: bestQuota.allocs,
		BytesPerOp:  bestQuota.bytes,
	})

	// The obs instrumented hot path: one counter increment, one labelled
	// increment and one histogram observation per op — the metrics work of
	// accounting a single request with observability enabled. Like the quota
	// fast path it must stay at 0 allocs_per_op; benchdiff fails on growth.
	const obsIters = 2_000_000
	obsOp := obs.Bench()
	var bestObs sample
	obsOK := false
	for round := 0; round < rounds; round++ {
		s, err := timeIt(obsIters, func() error {
			obsOp()
			return nil
		})
		if err != nil {
			return nil, err
		}
		bestObs = better(&bestObs, obsOK, s)
		obsOK = true
	}
	rep.Gateway = append(rep.Gateway, Run{
		Name:        "ObsHotPath",
		Iterations:  obsIters,
		NsPerOp:     bestObs.ns,
		AllocsPerOp: bestObs.allocs,
		BytesPerOp:  bestObs.bytes,
	})
	return rep, nil
}
