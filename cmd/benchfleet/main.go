// Command benchfleet records the repository's performance trajectory in
// BENCH_fleet.json: it runs the fleet worker-pool benchmark (the same
// scenario as BenchmarkFleetWorkloads, via fleet.NewBenchFleet) at pool
// sizes 1, 2 and 4, the dcsim engine benchmarks (sequential, parallel,
// transition-costed, sweep), and the online control plane (one autopilot run
// per bundled policy, with the derived re-planning tick throughput), and
// writes every ns/op together with the derived speedups.
//
// Methodology: every configuration is measured with a fixed iteration count
// after a warm-up replay, the configurations are interleaved round-robin
// over several rounds, and the minimum per-operation time across rounds is
// recorded — the estimator least sensitive to scheduler noise on shared
// machines.
//
// The CI bench step runs it with -min-speedup 1.5: on a host with at least
// four CPUs the Workers=4 fleet replay must beat Workers=1 by at least that
// factor. With fewer CPUs the gate is skipped — goroutines cannot beat
// wall-clock on one core, and two noisy shared vCPUs cannot express the 4-way
// parallelism reliably — and the report records gomaxprocs (and
// parallel_hardware=false on single-core) so the trajectory stays honest
// about where it was measured.
//
// Usage:
//
//	benchfleet                       # write BENCH_fleet.json in the cwd
//	benchfleet -out /tmp/bench.json  # write elsewhere
//	benchfleet -min-speedup 1.5      # fail below 1.5x (multi-core hosts)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/autopilot"
	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/trace"
)

// rounds is how many times every configuration is re-measured; the minimum
// across rounds is reported.
const rounds = 3

// Run is one recorded benchmark: a name, the worker-pool size it used, the
// fixed per-round iteration count and the minimum per-operation time across
// rounds.
type Run struct {
	Name       string `json:"name"`
	Workers    int    `json:"workers"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
}

// Report is the BENCH_fleet.json schema.
type Report struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// ParallelHardware is false when the host cannot express goroutine
	// parallelism as wall-clock speedup (GOMAXPROCS=1); speedup gates are
	// skipped in that case.
	ParallelHardware bool  `json:"parallel_hardware"`
	Fleet            []Run `json:"fleet"`
	// FleetSpeedup4v1 is ns/op(Workers=1) / ns/op(Workers=4) for the fleet
	// workload replay — the acceptance number of the fleet layer.
	FleetSpeedup4v1 float64 `json:"fleet_speedup_workers4_vs_1"`
	DCSim           []Run   `json:"dcsim"`
	// DCSimSpeedup is ns/op(sequential) / ns/op(parallel) for the epoch
	// engine at GOMAXPROCS workers.
	DCSimSpeedup float64 `json:"dcsim_speedup_parallel_vs_sequential"`
	// Autopilot is the online control plane: one full Run per online policy
	// on the bench trace (same scenario as BenchmarkAutopilotTicks).
	Autopilot []Run `json:"autopilot"`
	// AutopilotTicksPerSec is the re-planning tick throughput of the fastest
	// online policy — the online loop's entry on the perf trajectory.
	AutopilotTicksPerSec float64 `json:"autopilot_ticks_per_sec"`
}

func main() {
	out := flag.String("out", "BENCH_fleet.json", "path of the JSON trajectory to write")
	minSpeedup := flag.Float64("min-speedup", 0,
		"fail unless the Workers=4 fleet bench beats Workers=1 by this factor (0 disables; skipped when GOMAXPROCS=1)")
	flag.Parse()

	rep, err := collect()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfleet:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfleet:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchfleet:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: fleet speedup %.2fx (workers=4 vs 1), dcsim speedup %.2fx (parallel vs sequential), autopilot %.0f ticks/s\n",
		*out, rep.FleetSpeedup4v1, rep.DCSimSpeedup, rep.AutopilotTicksPerSec)

	if *minSpeedup > 0 {
		// The gate compares Workers=4 against Workers=1; below four CPUs the
		// measurement cannot express the expected parallelism (and on two
		// noisy shared vCPUs it would flake), so only enforce at >= 4.
		if rep.GOMAXPROCS < 4 {
			fmt.Printf("min-speedup %.2fx gate skipped: GOMAXPROCS=%d < 4\n", *minSpeedup, rep.GOMAXPROCS)
			return
		}
		if rep.FleetSpeedup4v1 < *minSpeedup {
			fmt.Fprintf(os.Stderr, "benchfleet: fleet speedup %.2fx below the %.2fx floor\n",
				rep.FleetSpeedup4v1, *minSpeedup)
			os.Exit(1)
		}
	}
}

// measureFleet times one fleet configuration: build, warm up with one full
// replay (the first pass on a fresh fleet faults every page in), then run a
// fixed number of steady-state replays.
func measureFleet(workers, iters int) (int64, error) {
	f, reqs, err := fleet.NewBenchFleet(fleet.DefaultBenchSpec(workers))
	if err != nil {
		return 0, err
	}
	replay := func() error {
		for _, r := range f.RunWorkloads(reqs) {
			if r.Err != "" {
				return fmt.Errorf("workload %s: %s", r.VM, r.Err)
			}
		}
		return nil
	}
	if err := replay(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := replay(); err != nil {
			return 0, err
		}
	}
	return int64(time.Since(start)) / int64(iters), nil
}

func collect() (*Report, error) {
	rep := &Report{
		Schema:           "zombieland-bench-fleet/v2",
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ParallelHardware: runtime.GOMAXPROCS(0) > 1,
	}

	// Fleet workload replay at the BenchmarkFleetWorkloads pool sizes,
	// interleaved round-robin; keep the minimum ns/op per pool size.
	const fleetIters = 20
	poolSizes := []int{1, 2, 4}
	best := make(map[int]int64)
	for round := 0; round < rounds; round++ {
		for _, workers := range poolSizes {
			nsPerOp, err := measureFleet(workers, fleetIters)
			if err != nil {
				return nil, err
			}
			if cur, ok := best[workers]; !ok || nsPerOp < cur {
				best[workers] = nsPerOp
			}
		}
	}
	for _, workers := range poolSizes {
		rep.Fleet = append(rep.Fleet, Run{
			Name:       "FleetWorkloads",
			Workers:    workers,
			Iterations: fleetIters,
			NsPerOp:    best[workers],
		})
	}
	if best[4] > 0 {
		rep.FleetSpeedup4v1 = float64(best[1]) / float64(best[4])
	}

	// The dcsim engine benchmarks: the same trace and configuration as
	// BenchmarkDCSimSequential / Parallel / Transitions in bench_test.go.
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "bench", Machines: 200, HorizonSec: 24 * 3600, Tasks: 3000,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, IdleFraction: 0.25, Seed: 42,
	})
	if err != nil {
		return nil, err
	}
	parWorkers := runtime.GOMAXPROCS(0)
	engineCfg := func(workers int, transitions bool) dcsim.Config {
		return dcsim.Config{
			Trace:                  tr,
			Policy:                 consolidation.NewZombieStack(),
			Machine:                energy.HPProfile(),
			ServerSpec:             consolidation.DefaultServerSpec(),
			ConsolidationPeriodSec: 30,
			Workers:                workers,
			TransitionCosts:        transitions,
		}
	}
	sweepCfg := dcsim.DefaultSweepConfig()
	for i := range sweepCfg.TraceConfigs {
		sweepCfg.TraceConfigs[i].Machines = 80
		sweepCfg.TraceConfigs[i].Tasks = 800
		sweepCfg.TraceConfigs[i].HorizonSec = 6 * 3600
	}
	sweepCfg.SweepWorkers = parWorkers

	const dcsimIters = 3
	engines := []struct {
		name    string
		workers int
		run     func() error
	}{
		{"DCSimSequential", 0, func() error { _, err := dcsim.Run(engineCfg(0, false)); return err }},
		{"DCSimParallel", parWorkers, func() error { _, err := dcsim.Run(engineCfg(parWorkers, false)); return err }},
		{"DCSimTransitions", 0, func() error { _, err := dcsim.Run(engineCfg(0, true)); return err }},
		{"DCSimSweep", parWorkers, func() error { _, err := dcsim.Sweep(sweepCfg); return err }},
	}
	bestEngine := make(map[string]int64)
	for round := 0; round < rounds; round++ {
		for _, e := range engines {
			if err := e.run(); err != nil { // warm-up
				return nil, err
			}
			start := time.Now()
			for i := 0; i < dcsimIters; i++ {
				if err := e.run(); err != nil {
					return nil, err
				}
			}
			nsPerOp := int64(time.Since(start)) / dcsimIters
			if cur, ok := bestEngine[e.name]; !ok || nsPerOp < cur {
				bestEngine[e.name] = nsPerOp
			}
		}
	}
	for _, e := range engines {
		rep.DCSim = append(rep.DCSim, Run{
			Name:       e.name,
			Workers:    e.workers,
			Iterations: dcsimIters,
			NsPerOp:    bestEngine[e.name],
		})
	}
	if bestEngine["DCSimParallel"] > 0 {
		rep.DCSimSpeedup = float64(bestEngine["DCSimSequential"]) / float64(bestEngine["DCSimParallel"])
	}

	// The online control plane: one full autopilot run per bundled policy on
	// the same bench trace, recorded as ns/op plus the tick throughput of the
	// fastest policy.
	const autopilotIters = 3
	onlineCfg := func(pol autopilot.Policy) autopilot.Config {
		return autopilot.Config{
			Trace:      tr,
			Policy:     pol,
			Machine:    energy.HPProfile(),
			ServerSpec: consolidation.DefaultServerSpec(),
			TickSec:    300,
		}
	}
	onlinePolicies := []struct {
		name string
		make func() autopilot.Policy
	}{
		{"reactive", func() autopilot.Policy { return autopilot.NewReactive(consolidation.NewZombieStack()) }},
		{"hysteresis", func() autopilot.Policy { return autopilot.NewHysteresis(consolidation.NewZombieStack()) }},
		{"ewma", func() autopilot.Policy { return autopilot.NewPredictiveEWMA(consolidation.NewZombieStack()) }},
	}
	bestOnline := make(map[string]int64)
	var onlineTicks int
	for round := 0; round < rounds; round++ {
		for _, pol := range onlinePolicies {
			// The warm-up run also reports the tick count. Policies hold
			// forecasting state across ticks, so every run gets a fresh
			// instance.
			res, err := autopilot.Run(onlineCfg(pol.make()))
			if err != nil {
				return nil, err
			}
			onlineTicks = res.Ticks
			start := time.Now()
			for it := 0; it < autopilotIters; it++ {
				if _, err := autopilot.Run(onlineCfg(pol.make())); err != nil {
					return nil, err
				}
			}
			nsPerOp := int64(time.Since(start)) / autopilotIters
			if cur, ok := bestOnline[pol.name]; !ok || nsPerOp < cur {
				bestOnline[pol.name] = nsPerOp
			}
		}
	}
	var fastest int64
	for _, pol := range onlinePolicies {
		rep.Autopilot = append(rep.Autopilot, Run{
			Name:       "AutopilotRun/" + pol.name,
			Iterations: autopilotIters,
			NsPerOp:    bestOnline[pol.name],
		})
		if fastest == 0 || bestOnline[pol.name] < fastest {
			fastest = bestOnline[pol.name]
		}
	}
	if fastest > 0 && onlineTicks > 0 {
		rep.AutopilotTicksPerSec = float64(onlineTicks) / (float64(fastest) / 1e9)
	}
	return rep, nil
}
