// Command onlinesim runs the online autonomic control plane over a synthetic
// datacenter trace and reports the regret against the offline dcsim oracle:
// how much of the paper's consolidation savings survive causal, online
// decision-making.
//
// The loop consumes the trace's streaming arrival feed (admission + placement
// at each arrival, periodic re-planning on a tick) under one of the bundled
// online policies — reactive threshold, hysteresis watermarks, or predictive
// EWMA forecasting — and every run prints the costed online saving side by
// side with the oracle's on the same trace, planner, machine and period.
//
// Usage:
//
//	onlinesim                                  # all three policies, zombiestack planner
//	onlinesim -policy hysteresis               # one policy, full regret report
//	onlinesim -planner oasis -machine dell     # different planner / power profile
//	onlinesim -tick 600 -hours 12 -seed 7      # control loop and trace knobs
//	onlinesim -family flashcrowd               # a workload-family scenario
//	onlinesim -trace cluster.csv.gz            # replay an imported trace file
//	onlinesim -execute -racks 25 -servers 8    # mirror decisions onto a live fleet
//	onlinesim -chaos light                     # resilience under a fault schedule
//	onlinesim -chaos all -chaos-seed 7         # off/light/heavy severity sweep
//	onlinesim -obs                             # append the obs dump: metrics
//	                                           #   snapshot + NDJSON event trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/acpi"
	"repro/internal/autopilot"
	"repro/internal/chaos"
	"repro/internal/cliflag"
	"repro/internal/consolidation"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	machines := flag.Int("machines", 200, "servers in the simulated fleet")
	tasks := flag.Int("tasks", 3000, "tasks in the generated trace")
	hours := flag.Float64("hours", 24, "trace horizon in hours")
	seed := flag.Int64("seed", 42, "trace generator seed (the report is bit-reproducible per seed)")
	modified := flag.Bool("modified", false, "use the paper's memory-heavy modified traces")
	family := flag.String("family", "", "generate the trace from a workload family instead: "+strings.Join(trace.FamilyNames(), ", "))
	traceFile := flag.String("trace", "", "replay a .csv/.csv.gz trace file instead of generating one (fleet size and horizon are derived; streamed record-at-a-time)")
	tick := flag.Int64("tick", 300, "re-planning tick of the online loop in seconds")
	policy := flag.String("policy", "all", "online policy: reactive, hysteresis, ewma or all")
	planner := flag.String("planner", "zombiestack", "base consolidation planner: neat, oasis or zombiestack")
	machine := flag.String("machine", "hp", "machine power profile: hp or dell")
	execute := flag.Bool("execute", false, "mirror every decision onto a live multi-rack fleet (real ACPI transitions)")
	racks := flag.Int("racks", 25, "racks of the live fleet (with -execute; racks*servers must equal -machines)")
	servers := flag.Int("servers", 8, "servers per rack of the live fleet (with -execute)")
	memGiB := flag.Int("mem-gib", 1, "memory per live-fleet server in GiB (with -execute; every Sz entry delegates this much real buffer memory, so keep it small)")
	chaosMode := flag.String("chaos", "", "fault-injection scenario: off, light, heavy or all (empty disables the chaos axis)")
	chaosSeed := flag.Int64("chaos-seed", 42, "fault-schedule seed (with -chaos; the report is bit-reproducible per seed)")
	obsOn := flag.Bool("obs", false, "attach the observability layer and append its dump: metrics snapshot + deterministic NDJSON event trace")
	flag.Parse()

	if err := run(os.Stdout, *machines, *tasks, *hours, *seed, *modified, *family, *traceFile, *tick, *policy, *planner, *machine, *execute, *racks, *servers, *memGiB, *chaosMode, *chaosSeed, *obsOn); err != nil {
		fmt.Fprintln(os.Stderr, "onlinesim:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, machines, tasks int, hours float64, seed int64, modified bool, family, traceFile string, tick int64, policy, planner, machine string, execute bool, racks, servers, memGiB int, chaosMode string, chaosSeed int64, obsOn bool) error {
	// Upfront flag validation with the valid ranges (shared helpers, the
	// same messages as fleetsim/fleetload), so a bad invocation fails
	// before any simulation state is built.
	if err := cliflag.FirstError(
		cliflag.PositiveInt("-machines", machines),
		cliflag.PositiveInt("-tasks", tasks),
		cliflag.PositiveFloat("-hours", hours),
		cliflag.PositiveInt64("-tick", tick, "second"),
	); err != nil {
		return err
	}
	if execute {
		if err := cliflag.FirstError(
			cliflag.PositiveInt("-racks", racks),
			cliflag.PositiveInt("-servers", servers),
			cliflag.PositiveInt("-mem-gib", memGiB),
		); err != nil {
			return err
		}
	}
	if family != "" && traceFile != "" {
		return fmt.Errorf("-family and -trace are mutually exclusive")
	}
	if modified && (family != "" || traceFile != "") {
		return fmt.Errorf("-modified applies to the built-in generator only; drop it with -family/-trace")
	}
	var chaosScenarios []string
	switch chaosMode {
	case "":
		// Chaos axis disabled.
	case "all":
		chaosScenarios = chaos.ScenarioNames()
	case "off", "light", "heavy":
		chaosScenarios = []string{chaosMode}
	default:
		return fmt.Errorf("unknown -chaos %q (valid: off, light, heavy, all)", chaosMode)
	}
	if len(chaosScenarios) > 0 && execute {
		return fmt.Errorf("-chaos runs on the abstract ledger; drop -execute (live-fleet faults go through the fleet fault surface)")
	}
	base, err := consolidation.PolicyByName(planner)
	if err != nil {
		return err
	}
	var profile *energy.MachineProfile
	switch strings.ToLower(machine) {
	case "hp":
		profile = energy.HPProfile()
	case "dell":
		profile = energy.DellProfile()
	default:
		return fmt.Errorf("unknown -machine %q (valid: hp, dell)", machine)
	}
	var policies []autopilot.Policy
	switch policy {
	case "all":
		policies = autopilot.Policies(base)
	case "reactive":
		policies = []autopilot.Policy{autopilot.NewReactive(base)}
	case "hysteresis":
		policies = []autopilot.Policy{autopilot.NewHysteresis(base)}
	case "ewma":
		policies = []autopilot.Policy{autopilot.NewPredictiveEWMA(base)}
	default:
		return fmt.Errorf("unknown -policy %q (valid: reactive, hysteresis, ewma, all)", policy)
	}

	var tr *trace.Trace
	switch {
	case family != "":
		tr, err = trace.GenerateFamily(family, trace.FamilyParams{
			Machines: machines, HorizonSec: int64(hours * 3600), Tasks: tasks, Seed: seed,
		})
	case traceFile != "":
		// Streams the file record-at-a-time (gzip sniffed); fleet size and
		// horizon are derived from the tasks themselves.
		tr, err = trace.ImportFile(traceFile, trace.ImportOptions{})
	default:
		gc := trace.DefaultConfig()
		if modified {
			gc = trace.ModifiedConfig()
		}
		gc.Machines = machines
		gc.Tasks = tasks
		gc.HorizonSec = int64(hours * 3600)
		gc.Seed = seed
		tr, err = trace.Generate(gc)
	}
	if err != nil {
		return err
	}
	if execute && racks*servers != tr.Machines {
		return fmt.Errorf("-racks %d x -servers %d = %d servers, but the trace fleet has %d machines",
			racks, servers, racks*servers, tr.Machines)
	}
	fmt.Fprintf(out, "Trace %s: %d machines, %d tasks over %.1f h (seed %d). Online tick %d s, planner %s, %s profile.\n\n",
		tr.Name, tr.Machines, len(tr.Tasks), float64(tr.HorizonSec)/3600, seed, tick, base.Name(), profile.Name)

	cfg := autopilot.Config{
		Trace:      tr,
		Machine:    profile,
		ServerSpec: consolidation.DefaultServerSpec(),
		TickSec:    tick,
	}
	// The loop stamps every event with its own simulated clock, so the -obs
	// dump is byte-identical run to run for a fixed invocation. With several
	// policies the runs share the bundle in policy order.
	var o *obs.Obs
	if obsOn {
		o = obs.New(obs.Options{TraceCapacity: 8192})
		cfg.Obs = o
	}
	if len(chaosScenarios) > 0 {
		if err := runChaos(out, cfg, policies, chaosScenarios, chaosSeed); err != nil {
			return err
		}
		return dumpObs(out, o)
	}
	if execute {
		// Each policy run needs its own live fleet: the executor replays real
		// ACPI transitions and the ledger is cumulative.
		fmt.Fprintf(out, "Executing against a live %dx%d fleet per policy.\n\n", racks, servers)
	}

	var reports []autopilot.Report
	for _, pol := range policies {
		c := cfg
		c.Policy = pol
		if execute {
			// The live fleet only mirrors postures and integrates energy — no
			// VMs are placed on it — but every Sz entry delegates the
			// server's free memory as real RDMA buffer allocations, so the
			// boards stay small (-mem-gib) to keep posture churn cheap.
			board := acpi.DefaultBoardSpec()
			board.MemoryBytes = uint64(memGiB) << 30
			f, err := fleet.New(fleet.Config{Racks: racks, Rack: core.Config{Servers: servers, Board: board}, Workers: 1})
			if err != nil {
				return err
			}
			exec := autopilot.NewFleetExecutor(f)
			c.Executor = exec
			rep, err := autopilot.Regret(c)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: live fleet ledger %.0f J after the run.\n", pol.Name(), exec.EnergyJoules())
			reports = append(reports, rep)
			continue
		}
		rep, err := autopilot.Regret(c)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	if execute {
		fmt.Fprintln(out)
	}

	if len(reports) == 1 {
		fmt.Fprintln(out, reports[0].Render())
		return dumpObs(out, o)
	}
	fmt.Fprintln(out, autopilot.RenderComparison(reports))
	best := reports[0]
	for _, r := range reports[1:] {
		if r.Online.SavingPercent > best.Online.SavingPercent {
			best = r
		}
	}
	fmt.Fprintf(out, "Best online policy: %s at %.2f%% saving, %.2f points of regret behind the offline oracle (%.2f%%).\n",
		best.Policy, best.Online.SavingPercent, best.RegretPercent, best.Oracle.SavingPercent)
	return dumpObs(out, o)
}

// dumpObs appends the -obs report; a nil bundle (obs off) writes nothing.
func dumpObs(out io.Writer, o *obs.Obs) error {
	if o == nil {
		return nil
	}
	fmt.Fprintln(out)
	return o.Dump(out)
}

// runChaos is the -chaos axis: every selected policy replays under every
// selected fault scenario, and the severity comparison is printed per
// policy (plus the full report when a single scenario was asked for).
func runChaos(out io.Writer, cfg autopilot.Config, policies []autopilot.Policy, scenarios []string, chaosSeed int64) error {
	plans := make([]*chaos.Plan, 0, len(scenarios))
	for _, name := range scenarios {
		plan, err := chaos.Scenario(name, cfg.Trace.HorizonSec, cfg.Trace.Machines, chaosSeed)
		if err != nil {
			return err
		}
		plans = append(plans, plan)
	}
	// With -obs, the fault schedules go into the trace up front so the export
	// shows the plan next to the runtime fault events the loop emits.
	for _, plan := range plans {
		plan.EmitSchedule(cfg.Obs.Tracer())
	}
	fmt.Fprintf(out, "Chaos axis: %s (fault seed %d).\n\n", strings.Join(scenarios, ", "), chaosSeed)
	for _, pol := range policies {
		c := cfg
		c.Policy = pol
		reports, err := autopilot.CompareChaos(c, plans)
		if err != nil {
			return err
		}
		if len(reports) == 1 {
			fmt.Fprintln(out, reports[0].Render())
			continue
		}
		fmt.Fprintln(out, chaos.RenderComparison(reports))
	}
	return nil
}
