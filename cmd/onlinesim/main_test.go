package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./cmd/... -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

// TestGoldenRegretComparison pins the three-policy regret comparison on a
// small fixed-seed trace.
func TestGoldenRegretComparison(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, 600, "all", "zombiestack", "hp",
		false, 0, 0, 0, "", 42, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "onlinesim", buf.Bytes())
}

// TestGoldenObsDump pins the -obs dump for a single-policy chaos run: the
// schedule emission, the loop's sim-time-stamped events and the metrics
// snapshot are all deterministic, so the whole report is golden-testable.
func TestGoldenObsDump(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, 600, "hysteresis", "zombiestack", "hp",
		false, 0, 0, 0, "heavy", 42, true); err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(buf.Bytes(), []byte("--- obs metrics ---"))
	if i < 0 {
		t.Fatal("no obs dump in -obs output")
	}
	checkGolden(t, "onlinesim_obs", buf.Bytes()[i:])
}

// TestGoldenChaosAxis pins the chaos severity sweep (off/light/heavy) for
// one policy — the resilience table format and its numbers.
func TestGoldenChaosAxis(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, 600, "hysteresis", "zombiestack", "hp",
		false, 0, 0, 0, "all", 42, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "onlinesim_chaos", buf.Bytes())
}
