package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./cmd/... -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

// TestGoldenRegretComparison pins the three-policy regret comparison on a
// small fixed-seed trace.
func TestGoldenRegretComparison(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, "", "", 600, "all", "zombiestack", "hp",
		false, 0, 0, 0, "", 42, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "onlinesim", buf.Bytes())
}

// TestGoldenObsDump pins the -obs dump for a single-policy chaos run: the
// schedule emission, the loop's sim-time-stamped events and the metrics
// snapshot are all deterministic, so the whole report is golden-testable.
func TestGoldenObsDump(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, "", "", 600, "hysteresis", "zombiestack", "hp",
		false, 0, 0, 0, "heavy", 42, true); err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(buf.Bytes(), []byte("--- obs metrics ---"))
	if i < 0 {
		t.Fatal("no obs dump in -obs output")
	}
	checkGolden(t, "onlinesim_obs", buf.Bytes()[i:])
}

// TestGoldenChaosAxis pins the chaos severity sweep (off/light/heavy) for
// one policy — the resilience table format and its numbers.
func TestGoldenChaosAxis(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, "", "", 600, "hysteresis", "zombiestack", "hp",
		false, 0, 0, 0, "all", 42, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "onlinesim_chaos", buf.Bytes())
}

// TestGoldenFamily pins the regret comparison on a workload-family scenario,
// the -family axis of the scenario engine.
func TestGoldenFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, "flashcrowd", "", 600, "all", "zombiestack", "hp",
		false, 0, 0, 0, "", 42, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "onlinesim_family", buf.Bytes())
}

// TestTraceFlagStreams100kTasks is the huge-trace acceptance path: a
// 100k-task .csv.gz written by the family engine replays through the full
// online control plane via -trace. The importer's bounded-memory contract
// itself is pinned by the allocation regression test in internal/trace;
// here the point is the end-to-end wiring at scale.
func TestTraceFlagStreams100kTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-task replay in -short mode")
	}
	tr, err := trace.GenerateFamily("serverless", trace.FamilyParams{
		Machines: 200, HorizonSec: 24 * 3600, Tasks: 100_000, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "huge.csv.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeCSV(f, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, 1, 1, 1, 42, false, "", path, 3600, "reactive", "neat", "hp",
		false, 0, 0, 0, "", 42, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "100000 tasks") {
		t.Fatalf("run did not report the full task count:\n%s", out)
	}
}

// TestFamilyTraceFlagErrors pins the mutual-exclusion and pass-through
// validation of the new trace-source flags.
func TestFamilyTraceFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4, 42, false, "diurnal", "x.csv", 600, "all", "zombiestack", "hp",
		false, 0, 0, 0, "", 42, false); err == nil {
		t.Error("-family with -trace accepted")
	}
	if err := run(&buf, 40, 300, 4, 42, true, "diurnal", "", 600, "all", "zombiestack", "hp",
		false, 0, 0, 0, "", 42, false); err == nil {
		t.Error("-modified with -family accepted")
	}
	if err := run(&buf, 40, 300, 4, 42, false, "nope", "", 600, "all", "zombiestack", "hp",
		false, 0, 0, 0, "", 42, false); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run(&buf, 40, 300, 4, 42, false, "", filepath.Join(t.TempDir(), "missing.csv"), 600,
		"all", "zombiestack", "hp", false, 0, 0, 0, "", 42, false); err == nil {
		t.Error("missing trace file accepted")
	}
}
