// Command energymodel prints the power- and energy-model results of the
// paper: the motivation figures (1-4) and the per-state energy table
// (Table 3) including the Sz estimate of Equation 1.
//
// Usage:
//
//	energymodel               # print everything
//	energymodel -exp fig1     # one experiment: fig1, fig2, fig3, fig4, table3
//	energymodel -machine Dell # machine profile for fig1 (HP or Dell)
package main

import (
	"flag"
	"fmt"
	"os"

	zombieland "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment to print: fig1, fig2, fig3, fig4, table3, all")
	machine := flag.String("machine", "HP", "machine profile for fig1 (HP or Dell)")
	points := flag.Int("points", 11, "number of utilization samples for fig1")
	flag.Parse()

	if err := run(*exp, *machine, *points); err != nil {
		fmt.Fprintln(os.Stderr, "energymodel:", err)
		os.Exit(1)
	}
}

func run(exp, machine string, points int) error {
	show := func(name string) bool { return exp == "all" || exp == name }

	if show("fig1") {
		res, err := zombieland.Figure1(machine, points)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if show("fig2") {
		fmt.Println(zombieland.Figure2().Render())
	}
	if show("fig3") {
		fmt.Println(zombieland.Figure3().Render())
	}
	if show("fig4") {
		fmt.Println(zombieland.Figure4().Render())
	}
	if show("table3") {
		fmt.Println(zombieland.Table3().Render())
	}
	switch exp {
	case "all", "fig1", "fig2", "fig3", "fig4", "table3":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
