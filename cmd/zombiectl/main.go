// Command zombiectl brings up a simulated rack with the zombie technology and
// runs a scripted scenario against it: push servers into the Sz state, place
// a VM whose memory is partly remote, run a workload through the RDMA-backed
// paging path, and print the rack state and energy report.
//
// Usage:
//
//	zombiectl                          # 4-server rack, default scenario
//	zombiectl -servers 8 -zombies 3    # bigger rack, more zombie servers
//	zombiectl -vm-gib 3 -workload spark-sql
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	zombieland "repro"
	"repro/internal/metrics"
)

func main() {
	servers := flag.Int("servers", 4, "number of servers in the rack")
	zombies := flag.Int("zombies", 1, "servers to push into the Sz state")
	memGiB := flag.Int("mem-gib", 16, "memory per server in GiB")
	vmGiB := flag.Float64("vm-gib", 28, "VM reserved memory in GiB")
	wl := flag.String("workload", "spark-sql", "workload to run: micro-benchmark, data-caching, elasticsearch, spark-sql")
	hours := flag.Float64("hours", 1, "simulated hours to account energy over")
	flag.Parse()

	if err := run(*servers, *zombies, *memGiB, *vmGiB, *wl, *hours); err != nil {
		fmt.Fprintln(os.Stderr, "zombiectl:", err)
		os.Exit(1)
	}
}

func parseWorkload(name string) (zombieland.Workload, error) {
	for _, k := range zombieland.Workloads() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q (valid: %s)", name, strings.Join(workloadNames(), ", "))
}

func workloadNames() []string {
	var out []string
	for _, k := range zombieland.Workloads() {
		out = append(out, k.String())
	}
	return out
}

func run(servers, zombies, memGiB int, vmGiB float64, wlName string, hours float64) error {
	if zombies >= servers {
		return fmt.Errorf("need at least one active server (%d servers, %d zombies)", servers, zombies)
	}
	kind, err := parseWorkload(wlName)
	if err != nil {
		return err
	}

	board := zombieland.DefaultBoardSpec()
	board.MemoryBytes = uint64(memGiB) << 30
	rack, err := zombieland.NewRack(zombieland.RackConfig{Servers: servers, Board: board})
	if err != nil {
		return err
	}
	fmt.Printf("Rack up: %d servers (%d GiB each), Sz-capable boards.\n\n", servers, memGiB)

	// Push the tail servers into the zombie state.
	names := rack.Servers()
	for i := 0; i < zombies; i++ {
		name := names[len(names)-1-i]
		if err := rack.PushToZombie(name); err != nil {
			return err
		}
		fmt.Printf("%s -> Sz (zombie): memory delegated, %.1f GiB now available rack-wide.\n",
			name, float64(rack.FreeRemoteMemory())/float64(1<<30))
	}
	fmt.Println()

	// Place a VM that needs remote memory.
	spec := zombieland.NewVM("demo-vm", int64(vmGiB*float64(1<<30)), int64(vmGiB*0.75*float64(1<<30)))
	guest, err := rack.CreateVM(spec, zombieland.CreateVMOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("VM %s placed on %s: %.1f GiB local, %.1f GiB remote (RAM Ext).\n\n",
		spec.ID, guest.Host, float64(guest.LocalBytes)/float64(1<<30), float64(guest.RemoteBytes)/float64(1<<30))

	// Run the workload.
	stats, err := rack.RunWorkload(spec.ID, kind, 2, 1)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Workload: "+kind.String(), "metric", "value")
	t.AddRowf("accesses", stats.Accesses)
	t.AddRowf("major faults", stats.MajorFaults)
	t.AddRowf("pages demoted to remote", stats.Demotions)
	t.AddRowf("pages promoted back", stats.Promotions)
	t.AddRowf("simulated exec time (ms)", stats.TotalNs()/1e6)
	t.AddRowf("time in remote transfers (ms)", stats.RemoteNs/1e6)
	fmt.Println(t.String())

	// Fabric traffic.
	fs := rack.Fabric().Stats()
	ft := metrics.NewTable("RDMA fabric", "metric", "value")
	ft.AddRowf("one-sided writes", fs.Writes)
	ft.AddRowf("one-sided reads", fs.Reads)
	ft.AddRowf("bytes written", fs.BytesWritten)
	ft.AddRowf("bytes read", fs.BytesRead)
	fmt.Println(ft.String())

	// Energy over the requested horizon.
	rack.AdvanceClock(int64(hours * 3600 * 1e9))
	et := metrics.NewTable(fmt.Sprintf("Energy over %.1f simulated hour(s)", hours), "server", "state", "joules")
	for _, rep := range rack.EnergyReportAll() {
		et.AddRowf(rep.Server, rep.State.String(), rep.Joules)
	}
	fmt.Println(et.String())
	fmt.Printf("Rack total: %.0f J. A zombie server consumes roughly the Sz fraction of Table 3 (%.1f%% of Emax).\n",
		rack.TotalEnergyJoules(), zombieland.HPProfile().Table3Row()[7])
	return nil
}
