// Command dcsim runs the datacenter-scale energy comparison of Figure 10:
// Neat, Oasis and ZombieStack on Google-like traces (original and
// memory-heavy variants) with the HP and Dell machine power profiles.
//
// Usage:
//
//	dcsim                         # default fleet (120 machines, 1500 tasks)
//	dcsim -machines 500 -tasks 6000 -horizon 86400
//	dcsim -parallel -workers 8    # shard epoch accounting over 8 goroutines
//	dcsim -transitions on         # charge ACPI/migration/remote-memory costs
//	dcsim -transitions both       # print Figure 10 with and without them
//	dcsim -rackmodel              # price epochs via the rack energy ledger
//	dcsim -sweep                  # scenario sweep: policies × machines ×
//	                              #   trace scales × consolidation periods ×
//	                              #   transition-cost axis
//	dcsim -sweep -scales 0.5,1,2 -periods 300,900 -workers 8
//	dcsim -family flashcrowd      # sweep a workload-family scenario pack
//	dcsim -trace cluster.csv.gz   # sweep an imported trace (streamed from disk)
//	dcsim -matrix                 # policy × scenario matrix: every workload
//	                              #   family × every online policy under chaos
//	dcsim -matrix -matrix-chaos heavy -workers 8
//	dcsim -cpuprofile cpu.pprof   # profile the run (pprof CPU profile)
//	dcsim -memprofile mem.pprof   # write an allocation profile on exit
//
// The parallel engine is bit-identical to the sequential one; -parallel only
// changes how the work is scheduled. -transitions selects the accounting
// model: "off" integrates steady-state epoch power only (the optimistic
// Figure 10 bound), "on" additionally charges every suspend/wake transition,
// migration drain and remote-memory fault, and "both" reports the two side by
// side. -sweep replaces the single Figure 10 comparison with a concurrent
// grid of scenarios aggregated per policy.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	zombieland "repro"
	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/energy"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	machines := flag.Int("machines", 120, "number of servers in the simulated fleet")
	tasks := flag.Int("tasks", 1500, "number of tasks in the generated trace")
	horizon := flag.Int64("horizon", 12*3600, "trace horizon in seconds")
	seed := flag.Int64("seed", 42, "trace generation seed")
	parallel := flag.Bool("parallel", false, "shard per-epoch accounting across a worker pool (same results, more cores)")
	sweep := flag.Bool("sweep", false, "run a scenario sweep grid instead of the single Figure 10 comparison")
	family := flag.String("family", "", "sweep over one workload-family scenario pack instead of the google-like mixes: "+strings.Join(trace.FamilyNames(), ", "))
	traceFile := flag.String("trace", "", "sweep over a .csv/.csv.gz trace file instead of generating traces (streamed record-at-a-time)")
	matrix := flag.Bool("matrix", false, "run the policy x scenario matrix: every workload family (or the -family/-trace pack) x every online policy under chaos")
	matrixChaos := flag.String("matrix-chaos", "light", "fault preset of every -matrix cell: off, light or heavy")
	workers := flag.Int("workers", 0, "worker goroutines; setting it implies -parallel (default with -parallel/-sweep: GOMAXPROCS)")
	scales := flag.String("scales", "1", "comma-separated trace scale factors for -sweep (scale the fleet and task count)")
	periods := flag.String("periods", "300", "comma-separated consolidation periods in seconds for -sweep")
	transitions := flag.String("transitions", "off", "transition-cost accounting: off (steady state), on, or both")
	rackmodel := flag.Bool("rackmodel", false, "price steady-state epochs through the rack model's energy ledger instead of the abstract power tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(os.Stdout, *machines, *tasks, *horizon, *seed, *parallel, *sweep, *workers, *scales, *periods, *transitions, *rackmodel, *family, *traceFile, *matrix, *matrixChaos); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
	}
}

// run executes the tool against the given flag values, writing every report
// to out — the entry point the golden-output test drives in-process.
func run(out io.Writer, machines, tasks int, horizon, seed int64, parallel, sweep bool, workers int, scales, periods, transitions string, rackmodel bool, family, traceFile string, matrix bool, matrixChaos string) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be non-negative (got %d)", workers)
	}
	transitionAxis, err := parseTransitionAxis(transitions)
	if err != nil {
		return err
	}
	w := workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}

	if matrix {
		if sweep {
			return fmt.Errorf("-matrix and -sweep are mutually exclusive")
		}
		return runMatrix(out, machines, tasks, horizon, seed, w, family, traceFile, matrixChaos)
	}
	pack, err := loadScenarioTrace(machines, tasks, horizon, seed, family, traceFile)
	if err != nil {
		return err
	}
	if sweep || pack != nil {
		// -family/-trace replace the generated google-like mixes, so they
		// always take the sweep path: the Figure 10 facade generates its own
		// two trace variants and has no injection point.
		return runSweep(out, machines, tasks, horizon, seed, w, scales, periods, transitionAxis, rackmodel, pack)
	}

	cfg := zombieland.Fig10Config{
		Machines:    machines,
		Tasks:       tasks,
		HorizonSec:  horizon,
		Seed:        seed,
		RackPricing: rackmodel,
	}
	if parallel || workers > 0 {
		cfg.Workers = w
	}
	for _, costed := range transitionAxis {
		cfg.TransitionCosts = costed
		res, err := zombieland.Figure10(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	fmt.Fprintln(out, "Energy saving is relative to a fleet that keeps every server in S0 (no consolidation).")
	return nil
}

// loadScenarioTrace builds the pre-built workload selected by -family or
// -trace, or returns nil when neither flag is set.
func loadScenarioTrace(machines, tasks int, horizon, seed int64, family, traceFile string) (*trace.Trace, error) {
	switch {
	case family != "" && traceFile != "":
		return nil, fmt.Errorf("-family and -trace are mutually exclusive")
	case family != "":
		return trace.GenerateFamily(family, trace.FamilyParams{
			Machines: machines, HorizonSec: horizon, Tasks: tasks, Seed: seed,
		})
	case traceFile != "":
		return trace.ImportFile(traceFile, trace.ImportOptions{})
	}
	return nil, nil
}

// runMatrix crosses the scenario packs (all workload families, or the single
// -family/-trace pack) with the online policy roster under the chaos preset
// and prints the policy×scenario matrix artifact.
func runMatrix(out io.Writer, machines, tasks int, horizon, seed int64, workers int, family, traceFile, chaosName string) error {
	pack, err := loadScenarioTrace(machines, tasks, horizon, seed, family, traceFile)
	if err != nil {
		return err
	}
	var packs []scenario.Pack
	if pack != nil {
		name := family
		if name == "" {
			name = pack.Name
		}
		packs = []scenario.Pack{{Name: name, Trace: pack}}
	} else {
		packs, err = scenario.FamilyPacks(trace.FamilyParams{
			Machines: machines, HorizonSec: horizon, Tasks: tasks, Seed: seed,
		})
		if err != nil {
			return err
		}
	}
	policies := []string{"reactive", "hysteresis", "ewma"}
	m, err := scenario.Run(scenario.MatrixConfig{
		Packs:         packs,
		Policies:      policies,
		ChaosScenario: chaosName,
		ChaosSeed:     seed,
		Workers:       workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, m.Render())
	fmt.Fprintf(out, "%d cells (%d scenarios x %d policies), %q chaos, %d workers. regret-%% = oracle - fault-free online; resil-regret-%% = fault-free - faulted saving.\n",
		len(m.Cells), len(packs), len(policies), chaosName, workers)
	return nil
}

// parseTransitionAxis maps the -transitions flag onto the runs to perform.
func parseTransitionAxis(mode string) ([]bool, error) {
	switch mode {
	case "off":
		return []bool{false}, nil
	case "on":
		return []bool{true}, nil
	case "both":
		return []bool{false, true}, nil
	default:
		return nil, fmt.Errorf("-transitions must be off, on or both (got %q)", mode)
	}
}

// runSweep builds the scenario grid {policy} × {machine} × {trace variant ×
// scale} × {period} × {transition axis} and prints the per-run table plus the
// per-policy summary.
func runSweep(out io.Writer, machines, tasks int, horizon, seed int64, workers int, scalesCSV, periodsCSV string, transitionAxis []bool, rackmodel bool, pack *trace.Trace) error {
	scales, err := parseFloats(scalesCSV)
	if err != nil {
		return fmt.Errorf("-scales: %w", err)
	}
	periodList, err := parseInts(periodsCSV)
	if err != nil {
		return fmt.Errorf("-periods: %w", err)
	}
	if pack != nil && scalesCSV != "1" {
		return fmt.Errorf("-scales only applies to generated traces, not -family/-trace packs")
	}

	var traceCfgs []trace.GeneratorConfig
	if pack != nil {
		scales = nil
	}
	for _, scale := range scales {
		if scale <= 0 {
			return fmt.Errorf("-scales: scale %v must be positive", scale)
		}
		if int(float64(machines)*scale) < 1 || int(float64(tasks)*scale) < 1 {
			return fmt.Errorf("-scales: scale %v shrinks the fleet below 1 machine or 1 task", scale)
		}
		for _, modified := range []bool{false, true} {
			tc := trace.DefaultConfig()
			if modified {
				tc = trace.ModifiedConfig()
			}
			tc.Machines = int(float64(machines) * scale)
			tc.Tasks = int(float64(tasks) * scale)
			tc.HorizonSec = horizon
			tc.Seed = seed
			if scale != 1 {
				tc.Name = fmt.Sprintf("%s-x%g", tc.Name, scale)
			}
			traceCfgs = append(traceCfgs, tc)
		}
	}

	var packs []*trace.Trace
	if pack != nil {
		packs = []*trace.Trace{pack}
	}
	policies := consolidation.Contenders()
	machineProfiles := energy.Profiles()
	// The sweep pool alone saturates the CPU when the grid is at least as
	// wide as the pool; only shard epochs inside each run when the grid is
	// too small to occupy every worker.
	cells := len(policies) * len(machineProfiles) * (len(traceCfgs) + len(packs)) * len(periodList) * len(transitionAxis)
	engineWorkers := 0
	if cells < workers {
		engineWorkers = (workers + cells - 1) / cells
	}
	cfg := dcsim.SweepConfig{
		Policies:        policies,
		Machines:        machineProfiles,
		TraceConfigs:    traceCfgs,
		Traces:          packs,
		PeriodsSec:      periodList,
		TransitionCosts: transitionAxis,
		ServerSpec:      consolidation.DefaultServerSpec(),
		RackPricing:     rackmodel,
		SweepWorkers:    workers,
		EngineWorkers:   engineWorkers,
	}
	res, err := dcsim.Sweep(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.Render())
	fmt.Fprintln(out, res.RenderSummary())
	pricing := "abstract power tables"
	if rackmodel {
		pricing = "rack energy ledger"
	}
	fmt.Fprintf(out, "%d scenarios, %d sweep workers, steady state priced by the %s. Energy saving is relative to a no-consolidation fleet.\n",
		len(res.Runs), workers, pricing)
	return nil
}

// parseList parses a comma-separated list, skipping empty fields.
func parseList[T any](csv string, parse func(string) (T, error)) ([]T, error) {
	var out []T
	for _, field := range strings.Split(csv, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := parse(field)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(csv string) ([]float64, error) {
	return parseList(csv, func(s string) (float64, error) { return strconv.ParseFloat(s, 64) })
}

// parseInts parses a comma-separated int64 list.
func parseInts(csv string) ([]int64, error) {
	return parseList(csv, func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) })
}
