// Command dcsim runs the datacenter-scale energy comparison of Figure 10:
// Neat, Oasis and ZombieStack on Google-like traces (original and
// memory-heavy variants) with the HP and Dell machine power profiles.
//
// Usage:
//
//	dcsim                         # default fleet (120 machines, 1500 tasks)
//	dcsim -machines 500 -tasks 6000 -horizon 86400
package main

import (
	"flag"
	"fmt"
	"os"

	zombieland "repro"
)

func main() {
	machines := flag.Int("machines", 120, "number of servers in the simulated fleet")
	tasks := flag.Int("tasks", 1500, "number of tasks in the generated trace")
	horizon := flag.Int64("horizon", 12*3600, "trace horizon in seconds")
	seed := flag.Int64("seed", 42, "trace generation seed")
	flag.Parse()

	res, err := zombieland.Figure10(zombieland.Fig10Config{
		Machines:   *machines,
		Tasks:      *tasks,
		HorizonSec: *horizon,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	fmt.Println("Energy saving is relative to a fleet that keeps every server in S0 (no consolidation).")
}
