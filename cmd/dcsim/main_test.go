package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update. Everything the tool prints is a pure function of its
// flags and seeds, so report-format regressions show up as a byte diff.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./cmd/... -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

// TestGoldenFigure10 pins the Figure 10 report (transition costs off and on)
// on a small fixed-seed fleet, with the parallel engine on two workers —
// which the engine guarantees is bit-identical to sequential.
func TestGoldenFigure10(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4*3600, 42, false, false, 2, "1", "300", "both", false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dcsim", buf.Bytes())
}

// TestGoldenSweep pins the scenario-sweep tables on a small grid.
func TestGoldenSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 30, 200, 2*3600, 42, false, true, 2, "1", "300,600", "off", false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dcsim_sweep", buf.Bytes())
}
