package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update. Everything the tool prints is a pure function of its
// flags and seeds, so report-format regressions show up as a byte diff.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./cmd/... -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

// TestGoldenFigure10 pins the Figure 10 report (transition costs off and on)
// on a small fixed-seed fleet, with the parallel engine on two workers —
// which the engine guarantees is bit-identical to sequential.
func TestGoldenFigure10(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 40, 300, 4*3600, 42, false, false, 2, "1", "300", "both", false, "", "", false, "light"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dcsim", buf.Bytes())
}

// TestGoldenSweep pins the scenario-sweep tables on a small grid.
func TestGoldenSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 30, 200, 2*3600, 42, false, true, 2, "1", "300,600", "off", false, "", "", false, "light"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dcsim_sweep", buf.Bytes())
}

// TestGoldenFamilySweep pins the sweep over a workload-family scenario pack:
// -family replaces the generated google-like mixes with one family trace.
func TestGoldenFamilySweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 30, 200, 2*3600, 42, false, false, 2, "1", "300", "off", false, "mlbatch", "", false, "light"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dcsim_family", buf.Bytes())
}

// TestGoldenMatrix pins the dcsim -matrix artifact on a small grid, run with
// two worker counts to hold the bit-identical-across-workers guarantee at the
// CLI layer too.
func TestGoldenMatrix(t *testing.T) {
	var first []byte
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		if err := run(&buf, 30, 150, 2*3600, 42, false, false, workers, "1", "300", "off", false, "", "", true, "light"); err != nil {
			t.Fatal(err)
		}
		// The trailer names the worker count; the matrix itself must not.
		got := buf.Bytes()
		if i := bytes.LastIndexByte(bytes.TrimRight(got, "\n"), '\n'); i >= 0 {
			got = got[:i+1]
		}
		if first == nil {
			first = got
			continue
		}
		if !bytes.Equal(got, first) {
			t.Fatalf("matrix with %d workers differs:\n%s\n--- vs ---\n%s", workers, got, first)
		}
	}
	checkGolden(t, "dcsim_matrix", first)
}

// TestTraceFlagSweep routes an on-disk .csv.gz trace through the sweep.
func TestTraceFlagSweep(t *testing.T) {
	tr, err := trace.GenerateFamily("serverless", trace.FamilyParams{
		Machines: 20, HorizonSec: 2 * 3600, Tasks: 120, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pack.csv.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeCSV(f, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, 20, 120, 2*3600, 42, false, false, 2, "1", "300", "off", false, "", path, false, "light"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("imported")) {
		t.Fatalf("sweep output does not mention the imported trace:\n%s", buf.Bytes())
	}
}

// TestScenarioFlagErrors pins the validation of the new trace-source flags.
func TestScenarioFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 30, 150, 2*3600, 42, false, false, 2, "1", "300", "off", false, "diurnal", "x.csv", false, "light"); err == nil {
		t.Error("-family with -trace accepted")
	}
	if err := run(&buf, 30, 150, 2*3600, 42, false, false, 2, "1", "300", "off", false, "nope", "", false, "light"); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run(&buf, 30, 150, 2*3600, 42, false, false, 2, "0.5,1", "300", "off", false, "diurnal", "", false, "light"); err == nil {
		t.Error("-scales with -family accepted")
	}
	if err := run(&buf, 30, 150, 2*3600, 42, false, true, 2, "1", "300", "off", false, "", "", true, "light"); err == nil {
		t.Error("-matrix with -sweep accepted")
	}
	if err := run(&buf, 30, 150, 2*3600, 42, false, false, 2, "1", "300", "off", false, "", "", true, "nope"); err == nil {
		t.Error("unknown -matrix-chaos preset accepted")
	}
}
