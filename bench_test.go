package zombieland

// This file is the benchmark harness: one benchmark per table and figure of
// the paper's evaluation (the experiment functions in experiments.go do the
// work), plus ablation benchmarks for the repository's main design
// choices and micro-benchmarks of the hot paths (RDMA verbs, policy
// eviction, the page-fault handler).
//
// Key result values are attached to every benchmark as custom metrics
// (b.ReportMetric), so `go test -bench=.` regenerates the numbers the paper
// reports; the cmd/ tools print the same results as formatted tables.

import (
	"runtime"
	"testing"

	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/energy"
	"repro/internal/hypervisor"
	"repro/internal/memctl"
	"repro/internal/pagepolicy"
	"repro/internal/rdma"
	"repro/internal/swapdev"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --------------------------------------------------------------- Figures 1-4

func BenchmarkFig1EnergyProportionality(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := Figure1("HP", 101)
		if err != nil {
			b.Fatal(err)
		}
		gap = res.Points[0].Actual - res.Points[0].Ideal
	}
	b.ReportMetric(gap*100, "idle-gap-%Emax")
}

func BenchmarkFig2AWSDemandTrend(b *testing.B) {
	var growth float64
	for i := 0; i < b.N; i++ {
		res := Figure2()
		growth = res.Points[len(res.Points)-1].Ratio / res.Points[0].Ratio
	}
	b.ReportMetric(growth, "demand-growth-x")
}

func BenchmarkFig3SupplyTrend(b *testing.B) {
	var decline float64
	for i := 0; i < b.N; i++ {
		res := Figure3()
		decline = res.Points[len(res.Points)-1].Ratio / res.Points[0].Ratio
	}
	b.ReportMetric(decline, "supply-ratio-final")
}

func BenchmarkFig4RackArchitectures(b *testing.B) {
	var serverCentric, zombie float64
	for i := 0; i < b.N; i++ {
		res := Figure4()
		serverCentric = res.Energies[energy.ServerCentric]
		zombie = res.Energies[energy.ZombieDisaggregation]
	}
	b.ReportMetric(serverCentric, "server-centric-Emax")
	b.ReportMetric(zombie, "zombie-Emax")
}

// ----------------------------------------------------------------- Figure 8

func BenchmarkFig8ReplacementPolicies(b *testing.B) {
	var best string
	for i := 0; i < b.N; i++ {
		res, err := Figure8(1)
		if err != nil {
			b.Fatal(err)
		}
		best = res.BestPolicy()
	}
	if best != "mixed" {
		b.Logf("best policy = %q (the paper reports mixed)", best)
	}
	b.ReportMetric(boolMetric(best == "mixed"), "mixed-is-best")
}

// ------------------------------------------------------------------ Table 1

func BenchmarkTable1RAMExtPenalty(b *testing.B) {
	var micro50, spark50 float64
	for i := 0; i < b.N; i++ {
		res, err := Table1(1)
		if err != nil {
			b.Fatal(err)
		}
		micro50, _ = res.Penalty(MicroBench, 50)
		spark50, _ = res.Penalty(SparkSQL, 50)
	}
	b.ReportMetric(micro50, "micro-50%-penalty-%")
	b.ReportMetric(spark50, "spark-50%-penalty-%")
}

// ------------------------------------------------------------------ Table 2

func BenchmarkTable2SwapTechnologies(b *testing.B) {
	var re, esd, hdd float64
	for i := 0; i < b.N; i++ {
		res, err := Table2(1)
		if err != nil {
			b.Fatal(err)
		}
		re, _ = res.Penalty(Elasticsearch, 50, "v1-RE")
		esd, _ = res.Penalty(Elasticsearch, 50, "v2-ESD")
		hdd, _ = res.Penalty(Elasticsearch, 50, "v2-LSSD")
	}
	b.ReportMetric(re, "elastic-50%-ramext-%")
	b.ReportMetric(esd, "elastic-50%-remote-swap-%")
	b.ReportMetric(hdd, "elastic-50%-hdd-swap-%")
}

// ----------------------------------------------------------------- Figure 9

func BenchmarkFig9Migration(b *testing.B) {
	var nativeAt20, zombieAt20 float64
	for i := 0; i < b.N; i++ {
		res, err := Figure9()
		if err != nil {
			b.Fatal(err)
		}
		nativeAt20 = res.Points[0].VanillaSec
		zombieAt20 = res.Points[0].ZombieSec
	}
	b.ReportMetric(nativeAt20, "native-20%wss-sec")
	b.ReportMetric(zombieAt20, "zombiestack-20%wss-sec")
}

// ------------------------------------------------------------------ Table 3

func BenchmarkTable3StateEnergy(b *testing.B) {
	var hpSz, dellSz float64
	for i := 0; i < b.N; i++ {
		res := Table3()
		hp := res.Rows["HP"]
		dell := res.Rows["Dell"]
		hpSz = hp[len(hp)-1]
		dellSz = dell[len(dell)-1]
	}
	b.ReportMetric(hpSz, "hp-sz-%Emax")
	b.ReportMetric(dellSz, "dell-sz-%Emax")
}

// ---------------------------------------------------------------- Figure 10

func BenchmarkFig10DatacenterEnergy(b *testing.B) {
	cfg := Fig10Config{Machines: 80, Tasks: 800, HorizonSec: 6 * 3600, Seed: 42}
	var neat, oasis, zombie float64
	for i := 0; i < b.N; i++ {
		res, err := Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		neat, _ = res.Saving("google-like-modified", "HP", "neat")
		oasis, _ = res.Saving("google-like-modified", "HP", "oasis")
		zombie, _ = res.Saving("google-like-modified", "HP", "zombiestack")
	}
	b.ReportMetric(neat, "neat-saving-%")
	b.ReportMetric(oasis, "oasis-saving-%")
	b.ReportMetric(zombie, "zombiestack-saving-%")
}

// ----------------------------------------------------- dcsim engine benches

// dcsimBenchTrace generates the trace shared by the engine benchmarks: a
// short consolidation period gives the engine many epochs to shard.
func dcsimBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "bench", Machines: 200, HorizonSec: 24 * 3600, Tasks: 3000,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, IdleFraction: 0.25, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// dcsimBenchConfig is the simulation the sequential/parallel pair runs.
func dcsimBenchConfig(tr *trace.Trace, workers int) dcsim.Config {
	return dcsim.Config{
		Trace:                  tr,
		Policy:                 consolidation.NewZombieStack(),
		Machine:                energy.HPProfile(),
		ServerSpec:             consolidation.DefaultServerSpec(),
		ConsolidationPeriodSec: 30,
		Workers:                workers,
	}
}

// BenchmarkDCSimSequential is the single-threaded baseline of the simulation
// engine.
func BenchmarkDCSimSequential(b *testing.B) {
	tr := dcsimBenchTrace(b)
	cfg := dcsimBenchConfig(tr, 0)
	b.ResetTimer()
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := dcsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		saving = res.SavingPercent
	}
	b.ReportMetric(saving, "saving-%")
}

// BenchmarkDCSimParallel shards the same simulation's per-epoch accounting
// across GOMAXPROCS workers; on multi-core it demonstrates the engine's
// speedup over BenchmarkDCSimSequential while producing bit-identical
// results (TestParallelMatchesSequential asserts the identity).
func BenchmarkDCSimParallel(b *testing.B) {
	tr := dcsimBenchTrace(b)
	cfg := dcsimBenchConfig(tr, runtime.GOMAXPROCS(0))
	b.ResetTimer()
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := dcsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		saving = res.SavingPercent
	}
	b.ReportMetric(saving, "saving-%")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkDCSimTransitions measures the event-driven engine: the same
// simulation as BenchmarkDCSimSequential but charging every ACPI transition,
// migration drain and remote-memory fault. The reported saving is the
// faithful (costed) Figure 10 number; the delta against the steady-state
// benchmark's metric is the optimism of the uncosted bound.
func BenchmarkDCSimTransitions(b *testing.B) {
	tr := dcsimBenchTrace(b)
	cfg := dcsimBenchConfig(tr, 0)
	cfg.TransitionCosts = true
	b.ResetTimer()
	var res dcsim.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = dcsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SavingPercent, "saving-%")
	b.ReportMetric(res.TransitionJoules/1e3, "transition-kJ")
	b.ReportMetric(float64(res.StateTransitions), "transitions")
	b.ReportMetric(float64(res.Migrations), "migrations")
}

// BenchmarkDCSimSweep measures the scenario-sweep harness on the default
// Figure 10 grid (scaled down to benchmark size).
func BenchmarkDCSimSweep(b *testing.B) {
	cfg := dcsim.DefaultSweepConfig()
	for i := range cfg.TraceConfigs {
		cfg.TraceConfigs[i].Machines = 80
		cfg.TraceConfigs[i].Tasks = 800
		cfg.TraceConfigs[i].HorizonSec = 6 * 3600
	}
	cfg.SweepWorkers = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var runs int
	for i := 0; i < b.N; i++ {
		res, err := dcsim.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		runs = len(res.Runs)
	}
	b.ReportMetric(float64(runs), "scenarios")
}

// ---------------------------------------------------------------- Ablations

// BenchmarkAblationBufferSize ablates the rack-wide BUFF_SIZE: smaller
// buffers mean more bookkeeping per allocated byte, larger buffers mean
// coarser reclaim. The benchmark measures the controller's allocate/release
// throughput at each size.
func BenchmarkAblationBufferSize(b *testing.B) {
	for _, size := range []int64{16 << 20, 64 << 20, 256 << 20} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			ctr := memctl.NewGlobalController(memctl.WithBufferSize(size))
			if err := ctr.RegisterServer("zombie", 1<<40, nil, nil); err != nil {
				b.Fatal(err)
			}
			if err := ctr.RegisterServer("user", 1<<40, nil, nil); err != nil {
				b.Fatal(err)
			}
			specs := make([]memctl.BufferSpec, (8<<30)/size)
			for i := range specs {
				specs[i] = memctl.BufferSpec{Offset: int64(i) * size, Size: size}
			}
			if _, err := ctr.GotoZombie("zombie", specs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bufs, err := ctr.AllocExt("user", 2<<30)
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]memctl.BufferID, len(bufs))
				for j, buf := range bufs {
					ids[j] = buf.ID
				}
				if err := ctr.Release("user", ids); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(specs)), "buffers-per-8GiB")
		})
	}
}

// BenchmarkAblationMixedWindow ablates the Mixed policy's clock window x: a
// tiny window degenerates to FIFO, a huge one to Clock. The metric is the
// micro-benchmark execution time at 40% local memory.
func BenchmarkAblationMixedWindow(b *testing.B) {
	machine := PaperVM()
	for _, window := range []int{1, 5, 32, 256} {
		b.Run(windowName(window), func(b *testing.B) {
			var exec float64
			for i := 0; i < b.N; i++ {
				runner := workload.NewRunner()
				pol := pagepolicy.NewMixed(pagepolicy.DefaultCost(), window)
				res, err := runner.RunRAMExt(workload.MicroBench, machine, 0.4, pol, nil)
				if err != nil {
					b.Fatal(err)
				}
				exec = res.ExecTimeNs / 1e6
			}
			b.ReportMetric(exec, "exec-ms-40%local")
		})
	}
}

// BenchmarkAblationAllocationPriority ablates the zombie-first allocation
// rule: with both zombie and active buffers available, it reports the share
// of allocations served from zombie memory (the design keeps active servers'
// memory as a reserve).
func BenchmarkAblationAllocationPriority(b *testing.B) {
	var zombieShare float64
	for i := 0; i < b.N; i++ {
		ctr := memctl.NewGlobalController(memctl.WithBufferSize(64 << 20))
		_ = ctr.RegisterServer("zombie", 1<<40, nil, nil)
		_ = ctr.RegisterServer("active", 1<<40, nil, nil)
		_ = ctr.RegisterServer("user", 1<<40, nil, nil)
		specs := make([]memctl.BufferSpec, 32)
		for j := range specs {
			specs[j] = memctl.BufferSpec{Offset: int64(j) << 26, Size: 64 << 20}
		}
		if _, err := ctr.GotoZombie("zombie", specs); err != nil {
			b.Fatal(err)
		}
		if _, err := ctr.DelegateActive("active", specs); err != nil {
			b.Fatal(err)
		}
		bufs, err := ctr.AllocSwap("user", 16*64<<20)
		if err != nil {
			b.Fatal(err)
		}
		fromZombie := 0
		for _, buf := range bufs {
			if buf.Type == memctl.ZombieBuffer {
				fromZombie++
			}
		}
		zombieShare = float64(fromZombie) / float64(len(bufs)) * 100
	}
	b.ReportMetric(zombieShare, "zombie-share-%")
}

// BenchmarkAblationConsolidationThreshold ablates ZombieStack's local-memory
// fraction (the 50% placement rule): lowering it frees more servers but costs
// VM performance; the benchmark reports the fleet energy saving at each
// setting.
func BenchmarkAblationConsolidationThreshold(b *testing.B) {
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "ablation", Machines: 80, HorizonSec: 4 * 3600, Tasks: 600,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, IdleFraction: 0.25, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	hp := energy.HPProfile()
	for _, frac := range []float64{0.3, 0.5, 0.7} {
		b.Run(fractionName(frac), func(b *testing.B) {
			var saving float64
			for i := 0; i < b.N; i++ {
				pol := consolidation.NewZombieStack()
				pol.LocalMemoryFraction = frac
				res, err := dcsim.Run(dcsim.Config{
					Trace: tr, Policy: pol, Machine: hp,
					ServerSpec: consolidation.DefaultServerSpec(),
				})
				if err != nil {
					b.Fatal(err)
				}
				saving = res.SavingPercent
			}
			b.ReportMetric(saving, "saving-%")
		})
	}
}

// BenchmarkAblationExplicitSDAggressiveness ablates the guest-visible swap
// traffic multiplier that distinguishes Explicit SD from hypervisor paging.
func BenchmarkAblationExplicitSDAggressiveness(b *testing.B) {
	for _, factor := range []float64{1.0, 2.2, 4.0} {
		b.Run(factorName(factor), func(b *testing.B) {
			var traffic float64
			for i := 0; i < b.N; i++ {
				dev, err := swapdev.New(swapdev.RemoteRAM, 256)
				if err != nil {
					b.Fatal(err)
				}
				esd, err := hypervisor.NewExplicitSD(hypervisor.ExplicitConfig{
					Pages: 256, LocalFrames: 128, Device: dev, Aggressiveness: factor,
				})
				if err != nil {
					b.Fatal(err)
				}
				for pass := 0; pass < 3; pass++ {
					for p := 0; p < 256; p++ {
						if _, err := esd.Access(p, true); err != nil {
							b.Fatal(err)
						}
					}
				}
				traffic = float64(esd.SwapTraffic())
			}
			b.ReportMetric(traffic, "swapped-pages")
		})
	}
}

// ---------------------------------------------------------- hot-path benches

// BenchmarkRDMAOneSidedWrite measures the simulated fabric's per-operation
// overhead for a 4 KiB page write (the RAM Ext demotion path).
func BenchmarkRDMAOneSidedWrite(b *testing.B) {
	f := rdma.NewFabric(rdma.DefaultCostModel())
	a, _ := f.AttachDevice("a")
	z, _ := f.AttachDevice("z")
	cq := rdma.NewCompletionQueue()
	qp := a.CreateQueuePair(cq)
	peer := z.CreateQueuePair(rdma.NewCompletionQueue())
	if err := rdma.Connect(qp, peer); err != nil {
		b.Fatal(err)
	}
	mr, _ := z.RegisterMemory(1<<20, rdma.AccessFlags{RemoteRead: true, RemoteWrite: true})
	page := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.Write(uint64(i), page, mr.RKey(), (i%200)*4096); err != nil {
			b.Fatal(err)
		}
		if i%64 == 0 {
			cq.Poll(0)
		}
	}
}

// BenchmarkPolicyEviction measures the per-eviction cost of each policy with
// a 4096-page resident set.
func BenchmarkPolicyEviction(b *testing.B) {
	for _, name := range pagepolicy.Names() {
		b.Run(name, func(b *testing.B) {
			pol, err := pagepolicy.New(name, pagepolicy.DefaultCost())
			if err != nil {
				b.Fatal(err)
			}
			for p := 0; p < 4096; p++ {
				pol.Fault(pagepolicy.PageID(p))
				if p%2 == 0 {
					pol.Access(pagepolicy.PageID(p))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				victim, _, ok := pol.Evict()
				if !ok {
					b.Fatal("policy ran dry")
				}
				pol.Fault(victim) // keep the resident set full
			}
		})
	}
}

// BenchmarkPageFaultHandler measures the full RAM Ext fault path (policy +
// demotion + promotion through the latency store).
func BenchmarkPageFaultHandler(b *testing.B) {
	store := hypervisor.NewInfinibandStore(8192)
	ram, err := hypervisor.NewRAMExt(hypervisor.Config{
		Pages:       8192,
		LocalFrames: 4096,
		Policy:      pagepolicy.NewMixed(pagepolicy.DefaultCost(), pagepolicy.DefaultMixedWindow),
		Remote:      store,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Populate.
	for p := 0; p < 8192; p++ {
		if _, err := ram.Access(p, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ram.Access(i%8192, i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------ helpers

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func byteSizeName(size int64) string {
	switch {
	case size >= 1<<30:
		return itoa(int(size>>30)) + "GiB"
	case size >= 1<<20:
		return itoa(int(size>>20)) + "MiB"
	default:
		return itoa(int(size)) + "B"
	}
}

func windowName(w int) string { return "window-" + itoa(w) }

func fractionName(f float64) string { return "local-" + itoa(int(f*100)) + "pct" }

func factorName(f float64) string { return "factor-" + itoa(int(f*10)) + "e-1" }

// itoa avoids pulling strconv into the benchmark file for tiny values.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
