package zombieland

import (
	"math"
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	res, err := Figure1("HP", 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The actual curve has the high idle floor; the ideal curve starts at 0.
	if res.Points[0].Actual < 0.4 || res.Points[0].Ideal != 0 {
		t.Errorf("idle point = %+v", res.Points[0])
	}
	// The Sz floor sits between S3 and the idle machine.
	if !(res.Ladder["S3"] < res.Ladder["Sz"] && res.Ladder["Sz"] < res.Ladder["S0idle"]) {
		t.Errorf("ladder = %+v", res.Ladder)
	}
	if !strings.Contains(res.Render(), "Figure 1") {
		t.Error("render should carry the figure title")
	}
	if _, err := Figure1("IBM", 5); err == nil {
		t.Error("unknown machine should fail")
	}
}

func TestFigures2And3(t *testing.T) {
	f2 := Figure2()
	f3 := Figure3()
	if len(f2.Points) == 0 || len(f3.Points) == 0 {
		t.Fatal("trends should have points")
	}
	// Demand grows, supply declines.
	if f2.Points[len(f2.Points)-1].Ratio <= f2.Points[0].Ratio {
		t.Error("Figure 2 demand ratio should grow")
	}
	if f3.Points[len(f3.Points)-1].Ratio >= f3.Points[0].Ratio {
		t.Error("Figure 3 supply ratio should decline")
	}
	if !strings.Contains(f2.Render(), "Figure 2") || !strings.Contains(f3.Render(), "Figure 3") {
		t.Error("renders should carry the titles")
	}
}

func TestFigure4(t *testing.T) {
	res := Figure4()
	sc := res.Energies[0] // server-centric is the first architecture
	if len(res.Energies) != 4 {
		t.Fatalf("energies = %+v", res.Energies)
	}
	if sc < 1.6 {
		t.Errorf("server-centric energy = %v, should be the most expensive (~2.1 Emax)", sc)
	}
	if !strings.Contains(res.Render(), "Figure 4") {
		t.Error("render should carry the title")
	}
}

func TestFigure8ShapesAndBestPolicy(t *testing.T) {
	res, err := Figure8(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3*6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Mixed is the best policy overall, as the paper reports.
	if best := res.BestPolicy(); best != "mixed" {
		t.Errorf("best policy = %q, paper reports mixed", best)
	}
	// Execution time decreases as local memory grows, for every policy.
	byPolicy := map[string][]Fig8Row{}
	for _, row := range res.Rows {
		byPolicy[row.Policy] = append(byPolicy[row.Policy], row)
	}
	for policy, rows := range byPolicy {
		if rows[0].ExecTimeMs < rows[len(rows)-1].ExecTimeMs {
			t.Errorf("%s: execution time should fall with more local memory", policy)
		}
		// At 100%% local there are no policy-induced faults.
		last := rows[len(rows)-1]
		if last.LocalPercent == 100 && last.MajorFaults != 0 {
			t.Errorf("%s: faults at 100%% local = %d", policy, last.MajorFaults)
		}
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Error("render should carry the title")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(Workloads())*len(LocalFractions()) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, k := range Workloads() {
		p20, ok1 := res.Penalty(k, 20)
		p50, ok2 := res.Penalty(k, 50)
		p80, ok3 := res.Penalty(k, 80)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s: missing cells", k)
		}
		if !(p20 >= p50 && p50 >= p80) {
			t.Errorf("%s: penalty should fall with local memory (%.1f, %.1f, %.1f)", k, p20, p50, p80)
		}
	}
	// The micro-benchmark is the worst case at low local memory.
	micro20, _ := res.Penalty(MicroBench, 20)
	for _, k := range []Workload{DataCaching, Elasticsearch, SparkSQL} {
		other20, _ := res.Penalty(k, 20)
		if micro20 < other20 {
			t.Errorf("micro-benchmark at 20%% (%.1f%%) should be the worst case (vs %s %.1f%%)", micro20, k, other20)
		}
	}
	if _, ok := res.Penalty(MicroBench, 33); ok {
		t.Error("lookup of an unmeasured fraction should miss")
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Error("render should carry the title")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(Workloads()) * len(LocalFractions()) * len(Table2Configurations())
	if len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	// At 50% local: RAM Ext <= remote swap <= SSD swap <= HDD swap for the
	// macro workloads (the paper's central comparison).
	for _, k := range []Workload{Elasticsearch, DataCaching, SparkSQL} {
		re, _ := res.Penalty(k, 50, "v1-RE")
		esd, _ := res.Penalty(k, 50, "v2-ESD")
		ssd, _ := res.Penalty(k, 50, "v2-LFSD")
		hdd, _ := res.Penalty(k, 50, "v2-LSSD")
		if !(re <= esd && esd <= ssd && ssd <= hdd) {
			t.Errorf("%s at 50%%: ordering violated RE=%.1f ESD=%.1f SSD=%.1f HDD=%.1f", k, re, esd, ssd, hdd)
		}
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Error("render should carry the title")
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.ZombieSec >= p.VanillaSec {
			t.Errorf("wss=%.0f%%: zombiestack should be faster", p.WSSRatio*100)
		}
	}
	if !strings.Contains(res.Render(), "Figure 9") {
		t.Error("render should carry the title")
	}
}

func TestTable3Values(t *testing.T) {
	res := Table3()
	if len(res.Machines) != 2 {
		t.Fatalf("machines = %v", res.Machines)
	}
	hp := res.Rows["HP"]
	if len(hp) != len(res.Configs) {
		t.Fatalf("HP row = %v", hp)
	}
	// The Sz estimate is the last column; the paper reports 12.67 for HP and
	// 11.15 for Dell.
	if math.Abs(hp[len(hp)-1]-12.67) > 0.05 {
		t.Errorf("HP Sz = %.2f, want 12.67", hp[len(hp)-1])
	}
	dell := res.Rows["Dell"]
	if math.Abs(dell[len(dell)-1]-11.15) > 0.05 {
		t.Errorf("Dell Sz = %.2f, want 11.15", dell[len(dell)-1])
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Error("render should carry the title")
	}
}

func TestFigure10Shape(t *testing.T) {
	cfg := Fig10Config{Machines: 60, Tasks: 600, HorizonSec: 6 * 3600, Seed: 42}
	res, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*2*3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, traceName := range []string{"google-like", "google-like-modified"} {
		for _, m := range []string{"HP", "Dell"} {
			neat, ok1 := res.Saving(traceName, m, "neat")
			oasis, ok2 := res.Saving(traceName, m, "oasis")
			zombie, ok3 := res.Saving(traceName, m, "zombiestack")
			if !ok1 || !ok2 || !ok3 {
				t.Fatalf("missing cells for %s/%s", traceName, m)
			}
			if !(zombie > oasis && oasis > neat) {
				t.Errorf("%s/%s: ordering violated neat=%.1f oasis=%.1f zombie=%.1f", traceName, m, neat, oasis, zombie)
			}
		}
	}
	if _, ok := res.Saving("nope", "HP", "neat"); ok {
		t.Error("lookup of an unknown trace should miss")
	}
	if !strings.Contains(res.Render(), "Figure 10") {
		t.Error("render should carry the title")
	}
	// A zero config falls back to the default.
	if _, err := Figure10(Fig10Config{}); err != nil {
		t.Fatal(err)
	}
}
